"""Delta-maintained obsolescence analyses (checkpoint-knowledge tracking).

The classic oracles answer Theorem-1/2 retention and Lemma-1 recovery lines
by querying checkpoint-level causal precedence, which rides on a
:class:`~repro.causality.happens_before.CausalOrder` — an ``O(E * P)``
vector-clock replay of the whole event log.  This module maintains the same
information *online*, in ``O(P)`` per recorded event, so analysis instants do
no event-graph traversal at all:

* ``ck[p][f]`` — the *checkpoint knowledge* of process ``p``: the largest
  index of a stable checkpoint of ``f`` whose checkpoint event lies in the
  causal past of ``p``'s current state (-1 if none).  Sends snapshot the
  sender's vector, receives merge the snapshot elementwise-max into the
  receiver, and taking checkpoint ``k`` sets the own entry to ``k``.
* ``ckpt_ck[c_p^k]`` — the knowledge vector frozen just *before* the
  checkpoint event of ``c_p^k``; it encodes the checkpoint's ground-truth
  dependency vector (``gtdv = ckpt_ck + 1`` elementwise).

Every checkpoint-level precedence fact the theorems need is then one integer
comparison: ``c_f^m`` causally precedes ``c_i^k`` iff ``ckpt_ck[c_i^k][f] >=
m`` (and precedes the volatile ``v_i`` iff ``ck[i][f] >= m``).  The retained
sets and recovery lines fall out as linear scans over the *live* checkpoint
window — bounded by obsolescence pruning, not by run length.

A per-process journal of ``(seq, ck)`` snapshots at knowledge-changing events
supports recovery truncation (restore the vector at the cut by bisection) and
is itself pruned together with the log; this is what keeps the state exact on
pruned histories, where a from-scratch replay is impossible because receives
of pruned sends survive only as INTERNAL placeholders.

:class:`IncrementalAnalysisView` is the read side handed to
:class:`~repro.ccp.pattern.CCP` as its ``analysis_provider``: it is bound to
the recorder version it was created at and refuses to answer once the
recorded execution has moved on.  ``mode="check"`` makes the analysis cache
compute the classic full-recompute answer as well and assert equality — the
cross-check the equivalence test matrix runs.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import TYPE_CHECKING, Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.ccp.checkpoint import CheckpointId
from repro.membership import MembershipError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ccp.consistency import GlobalCheckpoint
    from repro.simulation.trace import TraceRecorder

INCREMENTAL_MODES = ("off", "on", "check")


def _entry(vector: Sequence[int], f: int) -> int:
    """``vector[f]`` with out-of-range reads as -1 (no knowledge).

    Snapshots frozen before a membership growth are shorter than the current
    capacity; a missing column means the snapshot predates process ``f``'s
    existence, which is exactly "no checkpoint of ``f`` known".
    """
    return vector[f] if f < len(vector) else -1


class CheckpointKnowledgeTracker:
    """Online checkpoint-knowledge state, O(P) per recorded event.

    The matrices are sized for the current capacity and grow via
    :meth:`grow` when membership expands; out-of-range pids raise
    :class:`~repro.membership.MembershipError` rather than IndexError.
    """

    def __init__(self, num_processes: int) -> None:
        self._num_processes = num_processes
        self.ck: List[List[int]] = [[-1] * num_processes for _ in range(num_processes)]
        #: Knowledge snapshot piggybacked on each sent message (kept until the
        #: message can no longer be (re-)delivered, i.e. dropped or pruned).
        self.msg_ck: Dict[int, Tuple[int, ...]] = {}
        #: Knowledge frozen just before each stable checkpoint's event.
        self.ckpt_ck: Dict[CheckpointId, Tuple[int, ...]] = {}
        #: Per-process journal of (seq, ck-after-event) at knowledge-changing
        #: events, for truncation rebuilds; pruned together with the log.
        self.journal: List[List[Tuple[int, Tuple[int, ...]]]] = [
            [] for _ in range(num_processes)
        ]
        #: Knowledge at the start of the retained log (all -1 until pruning).
        self.base_ck: List[Tuple[int, ...]] = [
            (-1,) * num_processes for _ in range(num_processes)
        ]

    @property
    def num_processes(self) -> int:
        """The tracked capacity."""
        return self._num_processes

    def _check_pid(self, pid: int) -> None:
        if not 0 <= pid < self._num_processes:
            raise MembershipError(
                f"process {pid} is outside the tracked capacity of "
                f"{self._num_processes} processes (expected pid < "
                f"{self._num_processes}); grow the tracker on join first"
            )

    def grow(self, num_processes: int) -> None:
        """Extend the matrices to a larger capacity (membership join).

        Live vectors are padded with -1 (nobody can know a checkpoint of a
        process that did not exist); frozen snapshots (``msg_ck``,
        ``ckpt_ck``, journal entries) are left short and read through
        :func:`_entry`, so no history rewrite is needed.
        """
        if num_processes < self._num_processes:
            raise MembershipError(
                f"cannot shrink the tracker from {self._num_processes} to "
                f"{num_processes} processes (leaves retire pids, they do "
                f"not reduce capacity)"
            )
        if num_processes == self._num_processes:
            return
        pad = num_processes - self._num_processes
        for row in self.ck:
            row.extend([-1] * pad)
        self.ck.extend([-1] * num_processes for _ in range(pad))
        self.base_ck = [base + (-1,) * pad for base in self.base_ck]
        self.base_ck.extend((-1,) * num_processes for _ in range(pad))
        self.journal.extend([] for _ in range(pad))
        self._num_processes = num_processes

    def _full_row(self, vector: Sequence[int]) -> List[int]:
        """A snapshot padded to the current capacity (for live ``ck`` rows)."""
        return [_entry(vector, f) for f in range(self._num_processes)]

    # ------------------------------------------------------------------
    # Event notifications (called by TraceRecorder)
    # ------------------------------------------------------------------
    def note_send(self, message_id: int, sender: int) -> None:
        self._check_pid(sender)
        self.msg_ck[message_id] = tuple(self.ck[sender])

    def note_receive(self, message_id: int, receiver: int, seq: int) -> None:
        self._check_pid(receiver)
        snapshot = self.msg_ck[message_id]
        vector = self.ck[receiver]
        changed = False
        for f, known in enumerate(snapshot):
            if known > vector[f]:
                vector[f] = known
                changed = True
        if changed:
            self.journal[receiver].append((seq, tuple(vector)))

    def note_checkpoint(self, pid: int, index: int, seq: int) -> None:
        self._check_pid(pid)
        self.ckpt_ck[CheckpointId(pid, index)] = tuple(self.ck[pid])
        self.ck[pid][pid] = index
        self.journal[pid].append((seq, tuple(self.ck[pid])))

    # ------------------------------------------------------------------
    # History rewrites
    # ------------------------------------------------------------------
    def apply_truncation(self, lengths: Sequence[int]) -> None:
        """Restore the state at a per-process prefix cut (recovery session)."""
        for pid in range(self._num_processes):
            entries = self.journal[pid]
            cut = bisect_right(entries, lengths[pid] - 1, key=lambda item: item[0])
            del entries[cut:]
            self.ck[pid] = self._full_row(
                entries[-1][1] if entries else self.base_ck[pid]
            )

    def apply_suffix(self, starts: Sequence[int]) -> None:
        """Drop journal prefixes and re-offset seqs after the log was pruned."""
        for pid in range(self._num_processes):
            entries = self.journal[pid]
            cut = bisect_right(entries, starts[pid] - 1, key=lambda item: item[0])
            if cut:
                self.base_ck[pid] = entries[cut - 1][1]
            self.journal[pid] = [
                (seq - starts[pid], vector) for seq, vector in entries[cut:]
            ]

    def forget_checkpoints(self, cids: Iterable[CheckpointId]) -> None:
        for cid in cids:
            self.ckpt_ck.pop(cid, None)

    def forget_messages(self, message_ids: Iterable[int]) -> None:
        for message_id in message_ids:
            self.msg_ck.pop(message_id, None)


class IncrementalAnalysisView:
    """Read-only analysis provider over one recorder version.

    Serves the Theorem-1/2 retained sets and Lemma-1 recovery lines straight
    from the tracker's knowledge state.  The view is pinned to the recorder
    version current at construction: answering from newer state would
    silently describe a different execution, so stale access raises.
    """

    def __init__(self, recorder: "TraceRecorder", mode: str) -> None:
        self._recorder = recorder
        self._version = recorder.version
        self._mode = mode

    @property
    def mode(self) -> str:
        """``"on"`` (authoritative) or ``"check"`` (cross-checked by the cache)."""
        return self._mode

    @property
    def comparable(self) -> bool:
        """True when classic full recompute over the log equals ground truth.

        On pruned histories the event graph has lost edges (receives of pruned
        sends survive as INTERNAL placeholders), so the classic recomputation
        is not a valid reference and check mode compares nothing.
        """
        return all(base == 0 for base in self._recorder.log.checkpoint_bases)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _state(self) -> Tuple[CheckpointKnowledgeTracker, List[int], List[int]]:
        recorder = self._recorder
        if recorder.version != self._version:
            raise RuntimeError(
                "stale incremental analysis view: the recorded execution has "
                "changed since this CCP snapshot was taken"
            )
        tracker = recorder.knowledge_tracker
        assert tracker is not None
        last_stable = [taken - 1 for taken in recorder.checkpoints_taken]
        bases = list(recorder.log.checkpoint_bases)
        return tracker, last_stable, bases

    @property
    def _departed(self) -> FrozenSet[int]:
        return self._recorder.departed

    def _snapshot(
        self,
        tracker: CheckpointKnowledgeTracker,
        pid: int,
        index: int,
        last_stable: Sequence[int],
    ) -> Sequence[int]:
        """Knowledge just before checkpoint ``index`` of ``pid`` (volatile: now)."""
        if index > last_stable[pid]:
            return tracker.ck[pid]
        return tracker.ckpt_ck[CheckpointId(pid, index)]

    # ------------------------------------------------------------------
    # Analyses
    # ------------------------------------------------------------------
    def theorem1_retained(self) -> FrozenSet[CheckpointId]:
        """Theorem 1 over knowledge state: c_i^k is retained iff some process f
        satisfies ``ckpt_ck[c_i^{k+1}][f] >= last(f) > ckpt_ck[c_i^k][f]``.

        Departed processes are excluded on both sides: they can never be
        faulty again, so nothing pins their checkpoints and they pin
        nothing (the garbage-of-departed invariant).
        """
        tracker, last_stable, bases = self._state()
        n = self._recorder.num_processes
        departed = self._departed
        retained = set()
        for pid in range(n):
            if pid in departed:
                continue
            for k in range(bases[pid], last_stable[pid] + 1):
                cid = CheckpointId(pid, k)
                current = tracker.ckpt_ck[cid]
                successor = self._snapshot(tracker, pid, k + 1, last_stable)
                for f in range(n):
                    if f in departed:
                        continue
                    last = last_stable[f]
                    if last >= 0 and _entry(successor, f) >= last > _entry(current, f):
                        retained.add(cid)
                        break
        return frozenset(retained)

    def theorem2_retained(self) -> FrozenSet[CheckpointId]:
        """Theorem 2: as Theorem 1 but against the owner's *known* last
        checkpoints ``ck[i][f]`` instead of the global ``last(f)``."""
        tracker, last_stable, bases = self._state()
        n = self._recorder.num_processes
        departed = self._departed
        retained = set()
        for pid in range(n):
            if pid in departed:
                continue
            known = tracker.ck[pid]
            for k in range(bases[pid], last_stable[pid] + 1):
                cid = CheckpointId(pid, k)
                current = tracker.ckpt_ck[cid]
                successor = self._snapshot(tracker, pid, k + 1, last_stable)
                for f in range(n):
                    if f in departed:
                        continue
                    m = known[f]
                    if m >= 0 and _entry(successor, f) >= m > _entry(current, f):
                        retained.add(cid)
                        break
        return frozenset(retained)

    def recovery_line(self, faulty_set: FrozenSet[int]) -> "GlobalCheckpoint":
        """Lemma 1: per process the last general checkpoint not causally
        preceded by the last stable checkpoint of any faulty process.

        A departed process's component is pinned to its volatile index:
        recovery never rolls the departed back (they hold no state), and
        none of their checkpoints can belong to any future line.
        """
        from repro.ccp.consistency import GlobalCheckpoint

        tracker, last_stable, bases = self._state()
        n = self._recorder.num_processes
        departed = self._departed
        indices: List[int] = []
        for pid in range(n):
            if pid in departed:
                indices.append(last_stable[pid] + 1)
                continue
            chosen = bases[pid] if bases[pid] <= last_stable[pid] + 1 else 0
            for gamma in range(bases[pid], last_stable[pid] + 2):
                snapshot = self._snapshot(tracker, pid, gamma, last_stable)
                preceded = any(
                    _entry(snapshot, f) >= last_stable[f] for f in faulty_set
                )
                if not preceded:
                    chosen = gamma
            indices.append(chosen)
        return GlobalCheckpoint(tuple(indices))
