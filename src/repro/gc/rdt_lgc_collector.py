"""Simulator-facing adapter for RDT-LGC.

The stand-alone :class:`repro.core.RdtLgc` owns its dependency vector and
writes checkpoints to storage itself, exactly as Algorithms 1-3 are written.
Inside the simulator, however, the node owns the dependency vector and the
storage (so that *any* protocol can be paired with *any* collector); this
adapter therefore re-expresses RDT-LGC's bookkeeping over the shared
:class:`repro.core.UncollectedTable` and the shared rollback helpers, driven
purely by the node's notifications.  The observable behaviour — which
checkpoints are eliminated, and when — is identical to the stand-alone class,
which the integration tests check.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Tuple

from repro.core.rollback import retention_assignments
from repro.core.uncollected import UncollectedTable
from repro.gc.base import GarbageCollector
from repro.storage.stable import StableStorage


class RdtLgcCollector(GarbageCollector):
    """RDT-LGC as a pluggable collector (asynchronous, Definition 8)."""

    name = "rdt-lgc"
    asynchronous = True
    uses_time_assumptions = False
    uses_control_messages = False
    claims_optimality = True

    def __init__(self, pid: int, num_processes: int, storage: StableStorage) -> None:
        super().__init__(pid, num_processes, storage)
        self._uc = UncollectedTable(num_processes, on_eliminate=self._eliminate)
        self._departed_peers: Set[int] = set()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def uncollected(self) -> UncollectedTable:
        """The ``UC`` table (exposed for audits and tests)."""
        return self._uc

    def uc_view(self) -> Tuple[Optional[int], ...]:
        """The ``UC`` entries as checkpoint indices (None for ``Null``)."""
        return self._uc.view()

    def collected_indices(self) -> List[int]:
        """Checkpoint indices eliminated so far, in order."""
        return self._uc.eliminated_history()

    # ------------------------------------------------------------------
    # Algorithm 2
    # ------------------------------------------------------------------
    def on_receive(
        self,
        piggybacked: Sequence[int],
        updated_entries: Sequence[int],
        dv: Sequence[int],
    ) -> None:
        """Re-point ``UC[j]`` at the last stable checkpoint for every new dependency."""
        for j in updated_entries:
            # A piggyback can carry transitive knowledge of a departed
            # process; it is never again a reason to retain anything.
            if j in self._departed_peers:
                continue
            self._uc.release(j)
            self._uc.link(j, self._pid)

    def on_checkpoint_stored(
        self, index: int, dv: Sequence[int], *, forced: bool, time: float
    ) -> None:
        """Release the previous last checkpoint's ``UC[i]`` reference; protect the new one."""
        self._uc.release(self._pid)
        self._uc.new_ccb(self._pid, index)

    # ------------------------------------------------------------------
    # Algorithm 3
    # ------------------------------------------------------------------
    def on_rollback(
        self,
        rollback_index: int,
        last_interval_vector: Optional[Sequence[int]],
        dv: Sequence[int],
    ) -> List[int]:
        """Rebuild ``UC`` after a rollback and collect the checkpoints left unreferenced."""
        reference = (
            tuple(last_interval_vector) if last_interval_vector is not None else tuple(dv)
        )
        assignments = retention_assignments(self._storage, dv, reference)
        for peer in self._departed_peers:
            assignments.pop(peer, None)
        return self._uc.rebuild(assignments, self._storage.retained_indices())

    def on_peer_rollback(
        self, last_interval_vector: Sequence[int], dv: Sequence[int]
    ) -> List[int]:
        """Release every ``UC[f]`` whose process no longer precedes this one's state."""
        eliminated: List[int] = []
        for f in range(self._num_processes):
            if dv[f] < last_interval_vector[f]:
                index = self._uc.release(f)
                if index is not None:
                    eliminated.append(index)
        return eliminated

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------
    def on_peer_departure(self, pid: int) -> None:
        """Drop the checkpoint retained because of a departed process.

        ``UC[pid]`` references the stable checkpoint this process keeps
        solely in case ``p_pid`` fails (Theorem 2); a departed process can
        never fail, so the reference is released — eliminating the
        checkpoint if no other entry retains it.  The entry stays ``Null``
        forever: later piggybacks carrying transitive knowledge of ``pid``
        are ignored (see :meth:`on_receive`), and recovery-session rebuilds
        skip its assignment.
        """
        if pid != self._pid:
            self._departed_peers.add(pid)
            self._uc.release(pid)
