"""Wang et al. 1995 style coordinated garbage collection.

A coordinator periodically gathers global dependency information and tells
every process exactly which of its stable checkpoints are obsolete according
to the full characterisation (Theorem 1 of the paper, which for RD-trackable
patterns coincides with Wang et al.'s characterisation).  This collector
eliminates *all* obsolete checkpoints — including the "holes" the all-process
recovery-line scheme misses — and therefore achieves the global
``n(n+1)/2`` bound, at the price of control-message exchanges and a
coordinator.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.gc.coordinated import CoordinatedCollectorBase, GcReport


class WangCoordinatedCollector(CoordinatedCollectorBase):
    """Discard every checkpoint that global knowledge proves obsolete."""

    name = "wang-coordinated"
    asynchronous = False
    uses_time_assumptions = False
    uses_control_messages = True

    def compute_decisions(self, reports: Dict[int, GcReport]) -> Dict[int, List[int]]:
        """Theorem 1 evaluated on the gathered reports (with effective last indices)."""
        effective_last = self.effective_last_indices(reports)
        decisions: Dict[int, List[int]] = {}
        for pid, report in reports.items():
            decisions[pid] = self._obsolete_for(report, effective_last)
        return decisions

    def _obsolete_for(
        self, report: GcReport, effective_last: Sequence[int]
    ) -> List[int]:
        checkpoints: List[Tuple[int, Tuple[int, ...]]] = list(report.checkpoints)
        obsolete: List[int] = []
        for position, (index, dv) in enumerate(checkpoints):
            if index == report.last_stable:
                # The last stable checkpoint is never obsolete.
                continue
            if position + 1 < len(checkpoints):
                successor_dv = checkpoints[position + 1][1]
            else:
                successor_dv = report.volatile_dv
            retained = any(
                successor_dv[f] > effective_last[f] and dv[f] <= effective_last[f]
                for f in range(self._num_processes)
                if effective_last[f] >= 0
            )
            if not retained:
                obsolete.append(index)
        return obsolete
