"""Garbage collectors for communication-induced checkpointing.

This subpackage hosts the online garbage collectors that can be attached to
simulated processes: the paper's RDT-LGC (through a thin adapter over
:mod:`repro.core`) and the baselines it is compared against in Section 5:

* :class:`NoGarbageCollector` — retain everything (the "price of autonomy");
* :class:`AllProcessLineCollector` — the simple control-message scheme of
  Bhargava & Lian / the Elnozahy et al. survey: periodically compute the
  recovery line for the failure of *all* processes and discard everything
  strictly older than it;
* :class:`WangCoordinatedCollector` — Wang et al. 1995: a coordinator gathers
  global dependency information and discards *every* obsolete checkpoint
  (Theorem 1), achieving the ``n(n+1)/2`` global bound at the cost of control
  messages;
* :class:`ManivannanSinghalCollector` — the time-based scheme: no control
  messages, but safety rests on an assumption about how often processes take
  basic checkpoints;
* :class:`RdtLgcCollector` — the paper's contribution: asynchronous (causal
  knowledge only), no control messages, no time assumptions, at most ``n``
  retained checkpoints per process.
"""

from repro.gc.all_process_line import AllProcessLineCollector
from repro.gc.base import ControlPlane, GarbageCollector
from repro.gc.manivannan_singhal import ManivannanSinghalCollector
from repro.gc.none_gc import NoGarbageCollector
from repro.gc.rdt_lgc_collector import RdtLgcCollector
from repro.gc.registry import available_collectors, make_collector
from repro.gc.wang_coordinated import WangCoordinatedCollector

__all__ = [
    "AllProcessLineCollector",
    "ControlPlane",
    "GarbageCollector",
    "ManivannanSinghalCollector",
    "NoGarbageCollector",
    "RdtLgcCollector",
    "WangCoordinatedCollector",
    "available_collectors",
    "make_collector",
]
