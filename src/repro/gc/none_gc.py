"""The no-garbage-collection baseline.

Keeps every stable checkpoint forever.  It is trivially safe and maximally
wasteful; the evaluation benchmarks use it to show the storage growth that any
garbage collector is supposed to curb ("the price of autonomy in
communication-induced checkpointing protocols is storage space").
"""

from __future__ import annotations

from repro.gc.base import GarbageCollector


class NoGarbageCollector(GarbageCollector):
    """Never eliminates a checkpoint."""

    name = "none"
    asynchronous = True
    uses_time_assumptions = False
    uses_control_messages = False
