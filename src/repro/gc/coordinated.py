"""Shared machinery for coordinator-based garbage collectors.

Both baselines that rely on control messages (the all-process recovery-line
scheme and Wang et al.'s collect-everything scheme) follow the same round
structure, which this module factors out:

1. a designated coordinator periodically broadcasts a ``request``;
2. every process replies with a ``report``: the indices and stored dependency
   vectors of its stable checkpoints, its last stable index and its current
   dependency vector;
3. once all reports of the round are in, the coordinator computes a per-process
   list of checkpoint indices to discard and sends each process its
   ``decision``;
4. each process applies the decision to its stable storage.

Because reports are gathered asynchronously, the assembled view may not be a
consistent cut.  To keep the decisions safe the coordinator never trusts a
process's self-reported last checkpoint index alone: it uses, for every
process ``f``, the *effective* last index ``L̂_f`` — the maximum of ``f``'s
self-report and of every dependency-vector entry ``[f] - 1`` appearing in any
report.  With that adjustment a checkpoint is only discarded when it is
obsolete in every execution consistent with the gathered facts (the DESIGN.md
notes include the argument); the safety property tests exercise this under
random schedules.

Rollbacks invalidate in-flight rounds: every recovery-session hook bumps an
epoch counter and messages from older epochs are ignored.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.gc.base import GarbageCollector
from repro.storage.stable import StableStorage


@dataclass(frozen=True)
class GcReport:
    """One process's contribution to a garbage-collection round."""

    pid: int
    last_stable: int
    checkpoints: Tuple[Tuple[int, Tuple[int, ...]], ...]
    volatile_dv: Tuple[int, ...]


@dataclass(frozen=True)
class _Request:
    epoch: int
    round_id: int


@dataclass(frozen=True)
class _Reply:
    epoch: int
    round_id: int
    report: GcReport


@dataclass(frozen=True)
class _Decision:
    epoch: int
    round_id: int
    discard: Tuple[int, ...]


class CoordinatedCollectorBase(GarbageCollector):
    """Round-based coordinated garbage collection (template)."""

    asynchronous = False
    uses_control_messages = True

    def __init__(
        self,
        pid: int,
        num_processes: int,
        storage: StableStorage,
        *,
        period: float = 50.0,
        coordinator: int = 0,
    ) -> None:
        super().__init__(pid, num_processes, storage)
        if period <= 0:
            raise ValueError("the collection period must be positive")
        self._period = period
        self._coordinator = coordinator
        self._epoch = 0
        self._round_id = 0
        self._pending_reports: Dict[int, GcReport] = {}
        self._current_dv: Optional[Tuple[int, ...]] = None
        self._control_messages_sent = 0
        self._rounds_completed = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_coordinator(self) -> bool:
        """True for the process that drives the rounds."""
        return self._pid == self._coordinator

    @property
    def control_messages_sent(self) -> int:
        """Number of control messages this collector has sent."""
        return self._control_messages_sent

    @property
    def rounds_completed(self) -> int:
        """Number of rounds whose decisions were computed by this coordinator."""
        return self._rounds_completed

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def on_control_plane_attached(self) -> None:
        if self.is_coordinator:
            self.control.schedule_timer(self._period)

    # ------------------------------------------------------------------
    # Keeping track of the local dependency vector
    # ------------------------------------------------------------------
    def on_send(self, dv: Sequence[int]) -> None:
        self._current_dv = tuple(dv)

    def on_receive(
        self,
        piggybacked: Sequence[int],
        updated_entries: Sequence[int],
        dv: Sequence[int],
    ) -> None:
        self._current_dv = tuple(dv)

    def on_checkpoint_stored(
        self, index: int, dv: Sequence[int], *, forced: bool, time: float
    ) -> None:
        # The vector stored with the checkpoint is the pre-increment DV; the
        # process's current interval is one higher in its own entry.
        current = list(dv)
        current[self._pid] = index + 1
        self._current_dv = tuple(current)

    # ------------------------------------------------------------------
    # Round protocol
    # ------------------------------------------------------------------
    def on_timer(self, time: float) -> None:
        if not self.is_coordinator:
            return
        self._start_round()
        self.control.schedule_timer(self._period)

    def _start_round(self) -> None:
        self._round_id += 1
        self._pending_reports = {self._pid: self._build_report()}
        request = _Request(self._epoch, self._round_id)
        self.control.broadcast_control(request)
        self._control_messages_sent += self._num_processes - 1
        self._maybe_finish_round()

    def on_control_message(self, sender: int, payload: Any, time: float) -> None:
        if isinstance(payload, _Request):
            if payload.epoch != self._epoch:
                return
            reply = _Reply(payload.epoch, payload.round_id, self._build_report())
            self.control.send_control(sender, reply)
            self._control_messages_sent += 1
        elif isinstance(payload, _Reply):
            if payload.epoch != self._epoch or payload.round_id != self._round_id:
                return
            self._pending_reports[payload.report.pid] = payload.report
            self._maybe_finish_round()
        elif isinstance(payload, _Decision):
            if payload.epoch != self._epoch:
                return
            self._apply_decision(payload.discard)

    def _maybe_finish_round(self) -> None:
        if not self.is_coordinator:
            return
        if len(self._pending_reports) < self._num_processes:
            return
        decisions = self.compute_decisions(dict(self._pending_reports))
        self._rounds_completed += 1
        for pid, discard in decisions.items():
            if not discard:
                continue
            decision = _Decision(self._epoch, self._round_id, tuple(sorted(discard)))
            if pid == self._pid:
                self._apply_decision(decision.discard)
            else:
                self.control.send_control(pid, decision)
                self._control_messages_sent += 1
        self._pending_reports = {}

    def _apply_decision(self, discard: Sequence[int]) -> None:
        for index in discard:
            if self._storage.contains(index) and index != self._storage.last_index():
                self._eliminate(index)

    def _build_report(self) -> GcReport:
        checkpoints = tuple(
            (index, self._storage.get(index).dependency_vector)
            for index in self._storage.retained_indices()
        )
        if self._current_dv is not None:
            volatile = self._current_dv
        else:
            volatile = tuple(
                (self._storage.last_index() + 1) if j == self._pid else 0
                for j in range(self._num_processes)
            )
        return GcReport(
            pid=self._pid,
            last_stable=self._storage.last_index(),
            checkpoints=checkpoints,
            volatile_dv=volatile,
        )

    # ------------------------------------------------------------------
    # Recovery sessions: invalidate in-flight rounds
    # ------------------------------------------------------------------
    def on_rollback(
        self,
        rollback_index: int,
        last_interval_vector: Optional[Sequence[int]],
        dv: Sequence[int],
    ) -> List[int]:
        self._epoch += 1
        self._pending_reports = {}
        self._current_dv = tuple(dv)
        return []

    def on_peer_rollback(
        self, last_interval_vector: Sequence[int], dv: Sequence[int]
    ) -> List[int]:
        self._epoch += 1
        self._pending_reports = {}
        self._current_dv = tuple(dv)
        return []

    # ------------------------------------------------------------------
    # Template hooks
    # ------------------------------------------------------------------
    @staticmethod
    def effective_last_indices(reports: Dict[int, GcReport]) -> List[int]:
        """``L̂_f``: the safest usable "last stable checkpoint index" per process."""
        num_processes = len(next(iter(reports.values())).volatile_dv)
        effective = [-1] * num_processes
        for report in reports.values():
            effective[report.pid] = max(effective[report.pid], report.last_stable)
            vectors = [dv for _, dv in report.checkpoints] + [report.volatile_dv]
            for dv in vectors:
                for f, value in enumerate(dv):
                    effective[f] = max(effective[f], value - 1)
        return effective

    @abc.abstractmethod
    def compute_decisions(self, reports: Dict[int, GcReport]) -> Dict[int, List[int]]:
        """Given all reports of a round, decide which indices each process discards."""
