"""Time-based garbage collection (Manivannan & Singhal style).

The quasi-synchronous scheme of Manivannan & Singhal avoids control messages
by assuming that every process takes a basic checkpoint at least every ``T``
time units and that message delays are bounded.  Under those assumptions the
checkpoint a process may still need to retain on behalf of any other process
is at most ``T + D`` old, so everything older than a window ``W >= T + D``
(except the most recent checkpoint) can be discarded.

The paper's criticism — "requires processes to take basic checkpoints in known
time intervals, which is unfeasible in many practical scenarios" — is exactly
what this class makes tangible: it is a faithful *behavioural* stand-in, not a
re-implementation of their full protocol, and its safety rests entirely on the
workload honouring the declared period.  The evaluation benchmark runs it both
with honoured and violated assumptions to show the difference (see DESIGN.md,
substitution notes).
"""

from __future__ import annotations

from typing import Sequence

from repro.gc.base import GarbageCollector
from repro.storage.stable import StableStorage


class ManivannanSinghalCollector(GarbageCollector):
    """Discard checkpoints older than a time window derived from the checkpoint period."""

    name = "manivannan-singhal"
    asynchronous = False
    uses_time_assumptions = True
    uses_control_messages = False

    def __init__(
        self,
        pid: int,
        num_processes: int,
        storage: StableStorage,
        *,
        checkpoint_period: float = 20.0,
        max_message_delay: float = 5.0,
        slack: float = 1.0,
    ) -> None:
        super().__init__(pid, num_processes, storage)
        if checkpoint_period <= 0 or max_message_delay < 0 or slack < 0:
            raise ValueError("timing parameters must be positive")
        self._window = checkpoint_period + max_message_delay + slack
        self._prune_interval = max(checkpoint_period / 2.0, 1.0)

    @property
    def window(self) -> float:
        """Age beyond which stable checkpoints are discarded."""
        return self._window

    def on_control_plane_attached(self) -> None:
        self.control.schedule_timer(self._prune_interval)

    def on_checkpoint_stored(
        self, index: int, dv: Sequence[int], *, forced: bool, time: float
    ) -> None:
        self._prune(time)

    def on_timer(self, time: float) -> None:
        self._prune(time)
        self.control.schedule_timer(self._prune_interval)

    def _prune(self, now: float) -> None:
        last = self._storage.last_index()
        for index in self._storage.retained_indices():
            if index == last:
                continue
            if now - self._storage.get(index).time > self._window:
                self._eliminate(index)
