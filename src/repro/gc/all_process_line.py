"""The "recovery line of all processes" garbage collector.

This is the simple control-message scheme described by Bhargava & Lian and in
the Elnozahy et al. survey (references [5, 8] of the paper): periodically
compute the recovery line for the failure of *all* processes and discard every
stable checkpoint strictly older than the line.  Checkpoints above the line
that are nevertheless obsolete (the "holes" Wang's scheme and RDT-LGC do
collect) are kept, which is why this approach does not bound the number of
uncollected checkpoints.
"""

from __future__ import annotations

from typing import Dict, List

from repro.gc.coordinated import CoordinatedCollectorBase, GcReport


class AllProcessLineCollector(CoordinatedCollectorBase):
    """Discard everything below the all-process recovery line."""

    name = "all-process-line"
    asynchronous = False
    uses_time_assumptions = False
    uses_control_messages = True

    def compute_decisions(self, reports: Dict[int, GcReport]) -> Dict[int, List[int]]:
        """Lemma 1 with ``F = Pi``, evaluated on the gathered reports.

        For every process ``i`` the line component is the largest reported
        general checkpoint not causally preceded by the (effective) last stable
        checkpoint of any process; everything strictly below it is discarded.
        """
        effective_last = self.effective_last_indices(reports)
        decisions: Dict[int, List[int]] = {}
        for pid, report in reports.items():
            general: List = list(report.checkpoints) + [
                (report.last_stable + 1, report.volatile_dv)
            ]
            component = 0
            for index, dv in general:
                preceded = any(
                    dv[f] > effective_last[f]
                    for f in range(self._num_processes)
                    if effective_last[f] >= 0
                )
                if not preceded:
                    component = max(component, index)
            discard = [index for index, _ in report.checkpoints if index < component]
            decisions[pid] = discard
        return decisions
