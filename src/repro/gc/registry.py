"""Registry of garbage collectors, keyed by name.

Benchmarks and examples sweep over collectors by name; collector-specific
options (coordination period, time window) are passed as keyword arguments.
"""

from __future__ import annotations

from typing import Dict, List, Type

from repro.gc.all_process_line import AllProcessLineCollector
from repro.gc.base import GarbageCollector
from repro.gc.manivannan_singhal import ManivannanSinghalCollector
from repro.gc.none_gc import NoGarbageCollector
from repro.gc.rdt_lgc_collector import RdtLgcCollector
from repro.gc.wang_coordinated import WangCoordinatedCollector
from repro.storage.stable import StableStorage

_COLLECTORS: Dict[str, Type[GarbageCollector]] = {
    cls.name: cls
    for cls in (
        NoGarbageCollector,
        RdtLgcCollector,
        AllProcessLineCollector,
        WangCoordinatedCollector,
        ManivannanSinghalCollector,
    )
}


def available_collectors(*, asynchronous_only: bool = False) -> List[str]:
    """Names of all registered collectors (optionally only asynchronous ones)."""
    return [
        name
        for name, cls in sorted(_COLLECTORS.items())
        if not asynchronous_only or cls.asynchronous
    ]


def collector_class(name: str) -> Type[GarbageCollector]:
    """The collector class registered under ``name``."""
    try:
        return _COLLECTORS[name]
    except KeyError:
        raise KeyError(
            f"unknown garbage collector {name!r}; "
            f"available: {', '.join(sorted(_COLLECTORS))}"
        ) from None


def make_collector(
    name: str, pid: int, num_processes: int, storage: StableStorage, **options: object
) -> GarbageCollector:
    """Instantiate the collector registered under ``name`` for one process."""
    return collector_class(name)(pid, num_processes, storage, **options)  # type: ignore[arg-type]


def register_collector(cls: Type[GarbageCollector]) -> Type[GarbageCollector]:
    """Register a custom collector class (usable as a decorator)."""
    if not issubclass(cls, GarbageCollector):
        raise TypeError("collectors must subclass GarbageCollector")
    _COLLECTORS[cls.name] = cls
    return cls


def unregister_collector(name: str) -> None:
    """Remove a previously registered custom collector (no-op if absent)."""
    _COLLECTORS.pop(name, None)
