"""Garbage-collector interface used by the simulator.

A :class:`GarbageCollector` instance belongs to one process.  The simulation
node owns the mechanism (dependency vector, stable storage, message I/O) and
notifies the collector of every relevant event; the collector decides which
stable checkpoints to eliminate and when, by calling
``storage.eliminate(index)``.

The split captures the paper's taxonomy directly:

* *asynchronous* collectors (Definition 8) only ever react to the application
  events — they never use the control plane or timers;
* coordinated baselines additionally exchange control messages through the
  :class:`ControlPlane` handed to them by the node;
* time-based baselines rely on :meth:`GarbageCollector.on_timer` ticks, i.e.
  on assumptions about the passage of time.
"""

from __future__ import annotations

import abc
from typing import Any, Callable, ClassVar, List, Optional, Sequence

from repro.storage.stable import StableStorage


class ControlPlane(abc.ABC):
    """Facility for collectors that need control messages or timers.

    The simulator provides a concrete implementation per node; unit tests can
    provide in-memory fakes.  Asynchronous collectors never touch it.
    """

    @abc.abstractmethod
    def send_control(self, destination: int, payload: Any) -> None:
        """Send a control message to the collector of another process."""

    @abc.abstractmethod
    def broadcast_control(self, payload: Any) -> None:
        """Send a control message to the collectors of all other processes."""

    @abc.abstractmethod
    def schedule_timer(self, delay: float) -> None:
        """Request an :meth:`GarbageCollector.on_timer` callback after ``delay``."""

    @abc.abstractmethod
    def current_time(self) -> float:
        """The current simulated time."""


class GarbageCollector(abc.ABC):
    """Per-process garbage-collection policy."""

    #: Short name used in reports and the registry.
    name: ClassVar[str] = "abstract"
    #: True if the collector satisfies Definition 8 (application messages only).
    asynchronous: ClassVar[bool] = False
    #: True if the collector relies on timing assumptions.
    uses_time_assumptions: ClassVar[bool] = False
    #: True if the collector exchanges control messages.
    uses_control_messages: ClassVar[bool] = False
    #: True if the collector claims Theorem-5 optimality (its retained set
    #: equals the Theorem-2 retained set at every instant of an RDT
    #: execution).  Oracle stacks audit optimality only for collectors that
    #: claim it — baselines are merely required to be safe.
    claims_optimality: ClassVar[bool] = False

    def __init__(self, pid: int, num_processes: int, storage: StableStorage) -> None:
        if not 0 <= pid < num_processes:
            raise ValueError(f"pid {pid} out of range for {num_processes} processes")
        self._pid = pid
        self._num_processes = num_processes
        self._storage = storage
        self._control: Optional[ControlPlane] = None
        self._elimination_listeners: List[Callable[[int], None]] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pid(self) -> int:
        """The owning process id."""
        return self._pid

    @property
    def num_processes(self) -> int:
        """Number of processes in the system."""
        return self._num_processes

    @property
    def storage(self) -> StableStorage:
        """The stable storage this collector manages."""
        return self._storage

    @property
    def control(self) -> ControlPlane:
        """The attached control plane (raises if none was attached)."""
        if self._control is None:
            raise RuntimeError(f"collector {self.name!r} has no control plane attached")
        return self._control

    def piggyback_overhead_entries(self) -> int:
        """Extra per-message piggyback entries the collector requires (0 for RDT-LGC)."""
        return 0

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def attach_control_plane(self, control: ControlPlane) -> None:
        """Give the collector access to control messages and timers."""
        self._control = control
        self.on_control_plane_attached()

    def on_control_plane_attached(self) -> None:
        """Hook for collectors that schedule their first timer at start-up."""

    def attach_elimination_listener(self, listener: Callable[[int], None]) -> None:
        """Observe every checkpoint index this collector eliminates.

        Listeners fire *after* the checkpoint was removed from stable storage.
        The simulator uses this to feed obsolescence decisions to the trace
        recorder's pruning machinery; concrete collectors route their
        eliminations through :meth:`_eliminate` so the hook sees all of them.
        """
        self._elimination_listeners.append(listener)

    def _eliminate(self, index: int) -> None:
        """Eliminate stable checkpoint ``index`` and notify listeners."""
        self._storage.eliminate(index)
        for listener in self._elimination_listeners:
            listener(index)

    # ------------------------------------------------------------------
    # Application-event hooks (all optional)
    # ------------------------------------------------------------------
    def on_send(self, dv: Sequence[int]) -> None:
        """An application message is about to be sent with piggyback ``dv``."""

    def on_receive(
        self,
        piggybacked: Sequence[int],
        updated_entries: Sequence[int],
        dv: Sequence[int],
    ) -> None:
        """An application message was delivered.

        ``updated_entries`` lists the dependency-vector entries that increased;
        ``dv`` is the vector *after* the update.
        """

    def on_checkpoint_stored(
        self, index: int, dv: Sequence[int], *, forced: bool, time: float
    ) -> None:
        """A stable checkpoint was written to storage with the given vector."""

    # ------------------------------------------------------------------
    # Control-plane hooks
    # ------------------------------------------------------------------
    def on_control_message(self, sender: int, payload: Any, time: float) -> None:
        """A control message from another collector arrived."""

    def on_timer(self, time: float) -> None:
        """A timer previously scheduled through the control plane fired."""

    # ------------------------------------------------------------------
    # Recovery-session hooks
    # ------------------------------------------------------------------
    def on_rollback(
        self,
        rollback_index: int,
        last_interval_vector: Optional[Sequence[int]],
        dv: Sequence[int],
    ) -> List[int]:
        """This process rolled back to ``rollback_index``.

        Called *after* the node has discarded the rolled-back checkpoints and
        recreated its dependency vector (``dv`` is the recreated vector).
        Returns the checkpoint indices eliminated as garbage by the collector.
        """
        return []

    def on_peer_rollback(
        self, last_interval_vector: Sequence[int], dv: Sequence[int]
    ) -> List[int]:
        """Other processes rolled back; this one keeps its volatile state."""
        return []

    # ------------------------------------------------------------------
    # Membership hooks
    # ------------------------------------------------------------------
    def on_departure_self(self) -> List[int]:
        """This process left the membership permanently.

        A departed process can never be faulty, so no recovery line ever
        needs its checkpoints — all of them are garbage the instant it
        leaves.  The default eliminates everything retained, through
        :meth:`_eliminate` so elimination listeners (trace pruning) observe
        every index.  Returns the eliminated indices.
        """
        collected = sorted(self._storage.retained_indices())
        for index in collected:
            self._eliminate(index)
        return collected

    def on_peer_departure(self, pid: int) -> None:
        """Process ``pid`` left the membership permanently (optional hook)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(pid={self._pid})"
