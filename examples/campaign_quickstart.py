#!/usr/bin/env python3
"""Campaign quickstart: declare a sweep, run it twice, aggregate and replay it.

Walks the whole campaign pipeline on a deliberately tiny grid:

1. declare a :class:`CampaignSpec` (the grid axes);
2. expand it into self-seeded cells and run them on a 2-worker pool while
   streaming results to a JSONL store — and a replayable trace artifact per
   cell (``trace_dir``);
3. run the *same* campaign again — every cell resumes from the store, nothing
   re-executes;
4. fold the per-cell metrics into per-(collector, failure level) statistics
   and print/export the aggregate table;
5. re-build the exact same aggregates from the trace artifacts alone (no
   re-simulation), and rehydrate one cell's trace into its full analysis
   state — the recovery lines of the replayed recorder are the live run's.

The full paper-scale study is the same pipeline via
``python -m repro.campaign`` — only the grid is bigger; the trace tooling is
also available standalone as ``python -m repro.traceio``.
"""

import os
import tempfile

from repro.scenarios.campaign import (
    CampaignSpec,
    CollectorSpec,
    WorkloadSpec,
    aggregate_campaign,
    run_campaign,
)
from repro.traceio import TraceReader, analysis_table, campaign_records_from_traces


def main() -> None:
    # 1. Declare the grid: 2 collectors x 1 workload x 2 failure levels x 2 seeds.
    spec = CampaignSpec(
        name="quickstart",
        num_processes=3,
        duration=60.0,
        collectors=(
            CollectorSpec.of("rdt-lgc"),
            CollectorSpec.of("wang-coordinated", {"period": 15.0}),
        ),
        workloads=(WorkloadSpec.of("uniform-random"),),
        failure_counts=(0, 1),
        seeds=(0, 1),
    )
    print(f"campaign {spec.name!r}: {spec.cell_count} cells")

    with tempfile.TemporaryDirectory() as scratch:
        store = os.path.join(scratch, "quickstart.jsonl")
        traces = os.path.join(scratch, "traces")

        # 2. First run: everything executes (here on a 2-worker pool), each
        #    cell leaving a durable, replayable trace artifact.
        first = run_campaign(spec, store_path=store, workers=2, trace_dir=traces)
        print(f"first run:  {first.executed} executed, {first.resumed} resumed")

        # 3. Second run: the store already has every cell -> pure resume.
        second = run_campaign(spec, store_path=store)
        print(f"second run: {second.executed} executed, {second.resumed} resumed")

        # 4. Aggregate (identical from either run -- cells are self-seeded).
        summary = aggregate_campaign(second.records, group_by=("collector", "failures"))
        print()
        print(summary.table(title="Quickstart campaign (means over 2 seeds)").render())
        csv_path = os.path.join(scratch, "quickstart.csv")
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(summary.to_csv())
        print(f"\nfull-precision aggregate exported to {os.path.basename(csv_path)}")

        # 5. The traces alone reproduce the aggregates byte for byte...
        replayed_records = campaign_records_from_traces(traces)
        replayed_summary = aggregate_campaign(
            replayed_records, group_by=("collector", "failures")
        )
        assert replayed_summary.to_csv() == summary.to_csv()
        print(
            f"{len(replayed_records)} trace artifacts re-aggregated to the "
            f"byte-identical table (no re-simulation)"
        )

        # ... and any single cell rehydrates into its full analysis state.
        a_crashy_cell = next(
            r for r in replayed_records if r["params"]["failures"] > 0
        )
        replayed = TraceReader(os.path.join(traces, a_crashy_cell["trace"])).replay()
        print()
        print(
            analysis_table(
                replayed.recorder,
                title=f"Replayed cell {a_crashy_cell['cell_id']} "
                f"({len(replayed.recovery_plans)} recovery session(s))",
            ).render()
        )


if __name__ == "__main__":
    main()
