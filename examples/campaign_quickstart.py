#!/usr/bin/env python3
"""Campaign quickstart: declare a sweep, run it twice, aggregate it.

Walks the whole campaign pipeline on a deliberately tiny grid:

1. declare a :class:`CampaignSpec` (the grid axes);
2. expand it into self-seeded cells and run them on a 2-worker pool while
   streaming results to a JSONL store;
3. run the *same* campaign again — every cell resumes from the store, nothing
   re-executes;
4. fold the per-cell metrics into per-(collector, failure level) statistics
   and print/export the aggregate table.

The full paper-scale study is the same pipeline via
``python -m repro.campaign`` — only the grid is bigger.
"""

import os
import tempfile

from repro.scenarios.campaign import (
    CampaignSpec,
    CollectorSpec,
    WorkloadSpec,
    aggregate_campaign,
    run_campaign,
)


def main() -> None:
    # 1. Declare the grid: 2 collectors x 1 workload x 2 failure levels x 2 seeds.
    spec = CampaignSpec(
        name="quickstart",
        num_processes=3,
        duration=60.0,
        collectors=(
            CollectorSpec.of("rdt-lgc"),
            CollectorSpec.of("wang-coordinated", {"period": 15.0}),
        ),
        workloads=(WorkloadSpec.of("uniform-random"),),
        failure_counts=(0, 1),
        seeds=(0, 1),
    )
    print(f"campaign {spec.name!r}: {spec.cell_count} cells")

    with tempfile.TemporaryDirectory() as scratch:
        store = os.path.join(scratch, "quickstart.jsonl")

        # 2. First run: everything executes (here on a 2-worker pool).
        first = run_campaign(spec, store_path=store, workers=2)
        print(f"first run:  {first.executed} executed, {first.resumed} resumed")

        # 3. Second run: the store already has every cell -> pure resume.
        second = run_campaign(spec, store_path=store)
        print(f"second run: {second.executed} executed, {second.resumed} resumed")

        # 4. Aggregate (identical from either run -- cells are self-seeded).
        summary = aggregate_campaign(second.records, group_by=("collector", "failures"))
        print()
        print(summary.table(title="Quickstart campaign (means over 2 seeds)").render())
        csv_path = os.path.join(scratch, "quickstart.csv")
        with open(csv_path, "w", encoding="utf-8") as handle:
            handle.write(summary.to_csv())
        print(f"\nfull-precision aggregate exported to {os.path.basename(csv_path)}")


if __name__ == "__main__":
    main()
