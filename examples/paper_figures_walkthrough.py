#!/usr/bin/env python3
"""Walk through the paper's figures using the library's analysis tools.

For each figure the script rebuilds the scenario, prints an ASCII space-time
diagram and re-derives the facts the paper states about it: path
classifications and consistency for Figure 1, useless checkpoints and the
domino effect for Figure 2, recovery-line determination for Figure 3, the full
annotated RDT-LGC execution for Figure 4 and the worst-case bound for Figure 5.
"""

from repro.ccp.rdt import check_rdt
from repro.ccp.zigzag import ZigzagAnalysis
from repro.core.obsolete import obsolete_stable_checkpoints_theorem1
from repro.core.rdt_lgc import RdtLgc
from repro.recovery.recovery_line import recovery_line, recovery_line_brute_force
from repro.scenarios.experiments import run_worst_case
from repro.scenarios.figures import drive_figure4, figure1_ccp, figure2_ccp, figure3_ccp
from repro.viz.ascii_diagram import render_ccp, render_gc_trace


def figure1() -> None:
    print("=" * 72)
    print("Figure 1 — example CCP, zigzag paths and consistency")
    ccp = figure1_ccp()
    print(render_ccp(ccp))
    analysis = ZigzagAnalysis(ccp)
    print(f"[m1, m2] is a C-path: {analysis.is_causal_sequence([0, 1])}")
    print(f"[m5, m4] is a Z-path: {not analysis.is_causal_sequence([3, 2])}")
    print(f"pattern is RD-trackable: {check_rdt(ccp).is_rdt}")
    print(f"without m3 it would not be: {not check_rdt(figure1_ccp(include_m3=False)).is_rdt}")


def figure2() -> None:
    print("=" * 72)
    print("Figure 2 — useless checkpoints and the domino effect")
    ccp = figure2_ccp()
    print(render_ccp(ccp))
    useless = ZigzagAnalysis(ccp).useless_checkpoints()
    print(f"useless checkpoints: {[str(c) for c in useless]}")
    line = recovery_line_brute_force(ccp, [0])
    print(f"if p1 fails the recovery line is {line.indices}: back to the initial state")


def figure3() -> None:
    print("=" * 72)
    print("Figure 3 — recovery-line determination (structurally equivalent scenario)")
    ccp = figure3_ccp()
    print(render_ccp(ccp))
    line = recovery_line(ccp, [1, 2])
    print(f"recovery line for F = {{p2, p3}}: {line.indices}")
    print(
        "p3's last stable checkpoint is excluded because it is causally "
        f"preceded by p2's: {ccp.causally_precedes(ccp.last_stable_id(1), ccp.last_stable_id(2))}"
    )
    obsolete = sorted(obsolete_stable_checkpoints_theorem1(ccp))
    print(f"obsolete checkpoints (Theorem 1): {[str(c) for c in obsolete]}")


def figure4() -> None:
    print("=" * 72)
    print("Figure 4 — RDT-LGC execution with DV / UC annotations")
    gcs = [RdtLgc(pid, 3) for pid in range(3)]
    steps = drive_figure4(gcs)
    print(render_gc_trace(steps))
    eliminated = [
        f"s{pid + 1}^{index}" for pid, gc in enumerate(gcs) for index in gc.collected_indices()
    ]
    print(f"eliminated online: {eliminated}")
    print(
        "obsolete but not identifiable from causal knowledge: s2^1 "
        f"(still stored: {1 in gcs[1].retained_indices()})"
    )


def figure5() -> None:
    print("=" * 72)
    print("Figure 5 — worst-case scenario (n = 4)")
    result = run_worst_case(4)
    print(f"retained per process: {list(result.retained_final)} (bound: n = 4)")
    print(f"high-water marks: {list(result.max_retained_per_process)} (bound: n + 1)")


def main() -> None:
    figure1()
    figure2()
    figure3()
    figure4()
    figure5()


if __name__ == "__main__":
    main()
