#!/usr/bin/env python3
"""Fault-model study: every collector under adversarial network transports.

The paper evaluates its garbage collectors under one transport — uniform
latency plus jitter with i.i.d. loss.  This study crosses the collectors
with the pluggable fault-model library
(:mod:`repro.simulation.channels`):

* the **uniform** baseline (the paper's model, byte-identical defaults);
* **Gilbert–Elliott** bursty correlated loss;
* an **at-least-once** channel that duplicates deliveries;
* a timed network **partition** that splits the system and heals;
* **crash-recovery churn** (every process crashes and rejoins repeatedly).

Three things to look for in the tables:

1. the RDT-LGC collector stays safe (zero audit violations are enforced by
   the per-cell runs) and keeps its storage bound under *every* regime;
2. the coordinated baselines pay their control-message cost in every
   regime — and their collection stalls when the transport misbehaves;
3. duplicates and partition-blocked sends are measured per cell, so each
   adversary's pressure is visible right next to its effect.

A cell whose collector breaks under an adversary is recorded as a *failed
cell* — a finding, not an error (the unsafe Manivannan–Singhal stand-in is
the known example under crash injection).
"""

from repro.scenarios.campaign import aggregate_campaign, run_campaign
from repro.scenarios.campaign.spec import CampaignSpec, CollectorSpec, WorkloadSpec
from repro.simulation.channels import (
    DuplicatingChannel,
    GilbertElliottChannel,
    PartitionSchedule,
    UniformChannel,
)
from repro.simulation.failures import FailureModelSpec
from repro.simulation.network import NetworkConfig

DURATION = 60.0

#: The adversarial transports of this study (a compact slice of
#: :func:`repro.scenarios.experiments.fault_model_networks`).
REGIMES = (
    NetworkConfig(),
    NetworkConfig(
        channel=GilbertElliottChannel(
            loss_good=0.0, loss_bad=0.4, p_good_to_bad=0.05, p_bad_to_good=0.3
        )
    ),
    NetworkConfig(
        channel=DuplicatingChannel(channel=UniformChannel(), duplicate_probability=0.25)
    ),
    NetworkConfig(
        partitions=PartitionSchedule.of([(20.0, 40.0, ((0, 1),))])
    ),
)


def main() -> None:
    spec = CampaignSpec(
        name="fault-model-study",
        num_processes=4,
        duration=DURATION,
        collectors=(
            CollectorSpec.of("none"),
            CollectorSpec.of("rdt-lgc"),
            CollectorSpec.of("all-process-line", {"period": 20.0}),
            CollectorSpec.of("wang-coordinated", {"period": 20.0}),
            CollectorSpec.of(
                "manivannan-singhal",
                {"checkpoint_period": 8.0, "max_message_delay": 3.0},
            ),
        ),
        workloads=(WorkloadSpec.of("uniform-random"),),
        failure_counts=(0, FailureModelSpec.of("churn", {"hazard_rate": 0.03})),
        networks=REGIMES,
        seeds=(0, 1),
        audit="safety",
    )
    print(
        f"campaign {spec.name!r}: {spec.cell_count} cells "
        f"({len(spec.collectors)} collectors x {len(spec.networks)} transports "
        f"x {len(spec.failure_counts)} failure models x {len(spec.seeds)} seeds)"
    )

    run = run_campaign(spec, workers=2)
    if run.failed_records:
        print(
            f"\n{len(run.failed_records)} failed cell(s) — collectors whose "
            f"assumptions the adversary violates:"
        )
        for record in run.failed_records[:6]:
            p = record["params"]
            print(
                f"  {p['collector']} under failures={p['failures']}: "
                f"{record['error']}"
            )

    summary = aggregate_campaign(
        run.records,
        group_by=("network", "collector", "failures"),
        metrics=(
            "peak_retained",
            "collection_ratio",
            "control",
            "recoveries",
            "duplicated",
            "partition_blocked",
        ),
    )
    for regime, table in summary.tables_by("network"):
        print()
        print(table.render())

    print(
        "\nReading guide: 'duplicated' and 'partition_blocked' quantify each "
        "adversary's pressure; RDT-LGC keeps its storage bound and zero "
        "control messages under all of them, while the coordinated baselines "
        "pay control traffic everywhere and stall when the transport "
        "misbehaves."
    )


if __name__ == "__main__":
    main()
