#!/usr/bin/env python3
"""Sizing stable storage for an embedded / mobile deployment.

The paper's concluding remarks point at systems "where the storage space is
limited or expensive, like embedded systems and mobile computing".  This
example answers the question such a deployment would ask: *how much stable
storage must each node provision if checkpoints are taken autonomously?*

It sweeps the system size and, for each size, reports the worst-case
per-process occupancy guaranteed by RDT-LGC (the paper's ``n`` bound, ``n + 1``
transiently) next to what a long random execution actually uses — showing that
the bound is tight in the adversarial pattern of Figure 5 but that typical
executions sit well below it.
"""

from repro.analysis.tables import TextTable
from repro.scenarios.experiments import run_random_simulation, run_worst_case


def main() -> None:
    table = TextTable(
        [
            "n",
            "guaranteed bound",
            "worst-case schedule (measured)",
            "random workload p95-ish (max over run)",
            "random workload final",
        ],
        title="Per-process stable-storage budget under RDT-LGC",
    )
    for n in (2, 4, 8, 12):
        worst = run_worst_case(n)
        random_run = run_random_simulation(
            num_processes=n,
            duration=300.0,
            seed=n,
            collector="rdt-lgc",
            mean_checkpoint_gap=6.0,
            keep_final_ccp=False,
        )
        table.add_row(
            n,
            f"{n} (+1 transient)",
            max(worst.max_retained_per_process),
            random_run.max_retained_any_process,
            max(random_run.retained_final),
        )
    print(table.render())
    print(
        "\nProvisioning rule of thumb: n checkpoint slots per node are always "
        "enough (plus one slot of headroom while a new checkpoint is written); "
        "typical traffic keeps far fewer alive."
    )


if __name__ == "__main__":
    main()
