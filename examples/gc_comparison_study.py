#!/usr/bin/env python3
"""Compare garbage collectors on the workloads a deployment would actually see.

This is the evaluation study the paper motivates: storage space is the price
of autonomy in communication-induced checkpointing, so how much of it does
each garbage-collection strategy reclaim, and at what coordination cost?

The script runs every registered collector on three workload shapes
(client/server, pipeline, uniform random peer-to-peer) over several seeds and
prints, per collector: peak and final storage occupancy, the per-process
high-water mark, the collection ratio and the number of control messages.
"""

from repro.analysis.metrics import aggregate_results
from repro.analysis.tables import TextTable
from repro.scenarios.experiments import run_random_simulation
from repro.simulation.workloads import (
    ClientServerWorkload,
    PipelineWorkload,
    UniformRandomWorkload,
)

NUM_PROCESSES = 4
SEEDS = (1, 2, 3)

COLLECTORS = [
    ("none", {}),
    ("rdt-lgc", {}),
    ("all-process-line", {"period": 20.0}),
    ("wang-coordinated", {"period": 20.0}),
    ("manivannan-singhal", {"checkpoint_period": 8.0, "max_message_delay": 3.0}),
]

WORKLOADS = {
    "client-server": ClientServerWorkload,
    "pipeline": PipelineWorkload,
    "uniform-random": lambda: UniformRandomWorkload(mean_checkpoint_gap=6.0),
}


def study(workload_name: str) -> None:
    table = TextTable(
        [
            "collector",
            "peak total",
            "final total",
            "max/process",
            "collected %",
            "control msgs",
        ],
        title=f"Workload: {workload_name}, n = {NUM_PROCESSES}, {len(SEEDS)} seeds (means)",
    )
    for collector, options in COLLECTORS:
        results = [
            run_random_simulation(
                num_processes=NUM_PROCESSES,
                duration=250.0,
                seed=seed,
                collector=collector,
                collector_options=options,
                workload=WORKLOADS[workload_name](),
                keep_final_ccp=False,
            )
            for seed in SEEDS
        ]
        stats = aggregate_results(
            results,
            {
                "peak": lambda r: r.peak_total_retained,
                "final": lambda r: r.total_retained_final,
                "max_per_process": lambda r: r.max_retained_any_process,
                "collected": lambda r: 100 * r.collection_ratio,
                "control": lambda r: r.control_messages,
            },
        )
        table.add_row(
            collector,
            round(stats["peak"].mean, 1),
            round(stats["final"].mean, 1),
            round(stats["max_per_process"].mean, 1),
            round(stats["collected"].mean, 1),
            round(stats["control"].mean, 1),
        )
    print(table.render())
    print()


def main() -> None:
    for workload_name in WORKLOADS:
        study(workload_name)
    print(
        "Reading: 'none' grows with the execution; 'rdt-lgc' stays within n "
        "checkpoints per process with zero control messages; the coordinated "
        "schemes collect at least as much but pay control-message rounds; the "
        "time-based scheme works only while its timing assumptions hold."
    )


if __name__ == "__main__":
    main()
