#!/usr/bin/env python3
"""Compare garbage collectors on the workloads a deployment would actually see.

This is the evaluation study the paper motivates: storage space is the price
of autonomy in communication-induced checkpointing, so how much of it does
each garbage-collection strategy reclaim, and at what coordination cost?

The study is expressed as a declarative campaign — the paper's grid of every
registered collector × the four workload shapes × several seeds — expanded,
executed and aggregated by :mod:`repro.scenarios.campaign`.  This script runs
a shrunk copy of it (3 seeds, no failures) so it finishes in seconds; the
full grid (≥10 seeds, crash injection, worker pool) is one command::

    python -m repro.campaign --workers 8 --store results/paper.jsonl
"""

from repro.scenarios.experiments import paper_campaign_spec, run_collector_comparison

NUM_PROCESSES = 4
NUM_SEEDS = 3


def main() -> None:
    spec = paper_campaign_spec(
        num_processes=NUM_PROCESSES,
        duration=250.0,
        num_seeds=NUM_SEEDS,
        failure_counts=(0,),
    )
    _, summary = run_collector_comparison(
        spec,
        group_by=("workload", "collector"),
        metrics=(
            "peak_retained",
            "final_retained",
            "max_per_process",
            "collection_ratio",
            "control",
        ),
    )
    for _, table in summary.tables_by("workload"):
        print(table.render())
        print()
    print(
        "Reading: 'none' grows with the execution; 'rdt-lgc' stays within n "
        "checkpoints per process with zero control messages; the coordinated "
        "schemes collect at least as much but pay control-message rounds; the "
        "time-based scheme works only while its timing assumptions hold."
    )


if __name__ == "__main__":
    main()
