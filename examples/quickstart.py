#!/usr/bin/env python3
"""Quickstart: run a checkpointed distributed application with RDT-LGC.

The example simulates four processes exchanging messages under the FDAS
checkpointing protocol, with the paper's RDT-LGC garbage collector attached to
each process.  It then prints the headline numbers: how many checkpoints were
taken, how many were collected while the application ran, how many each
process still holds (never more than ``n``), and the audit verdicts that the
collector was safe (Theorem 4) and optimal (Theorem 5) throughout — including
across an injected crash and the resulting recovery session.
"""

from repro import (
    FailureSchedule,
    SimulationConfig,
    SimulationRunner,
    UniformRandomWorkload,
)
from repro.analysis.tables import TextTable


def main() -> None:
    config = SimulationConfig(
        num_processes=4,
        duration=300.0,
        workload=UniformRandomWorkload(mean_message_gap=2.0, mean_checkpoint_gap=8.0),
        protocol="fdas",
        collector="rdt-lgc",
        failures=FailureSchedule.of([(180.0, 2)]),
        seed=42,
        audit="full",
    )
    result = SimulationRunner(config).run()

    table = TextTable(["metric", "value"], title="Quickstart: FDAS + RDT-LGC, n = 4")
    table.add_row("checkpoints taken (basic + forced)", result.total_checkpoints)
    table.add_row("forced checkpoints", result.forced_checkpoints)
    table.add_row("application messages", result.messages_sent)
    table.add_row("control messages used by GC", result.control_messages)
    table.add_row("checkpoints collected online", result.total_collected)
    table.add_row("collection ratio", f"{result.collection_ratio:.1%}")
    table.add_row("retained per process (final)", list(result.retained_final))
    table.add_row("max retained by any process", result.max_retained_any_process)
    table.add_row("recovery sessions", len(result.recoveries))
    table.add_row("safe (Theorem 4) in every audit", result.all_audits_safe)
    table.add_row("optimal (Theorem 5) in every audit", result.all_audits_optimal)
    print(table.render())

    for record in result.recoveries:
        print(
            f"\nrecovery at t={record.time:.1f}: process {record.faulty[0]} failed, "
            f"restarted from line {record.recovery_line}, "
            f"{record.lost_general_checkpoints} general checkpoints lost, "
            f"{record.collected_during_recovery} stable checkpoints collected by Algorithm 3"
        )


if __name__ == "__main__":
    main()
