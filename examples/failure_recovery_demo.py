#!/usr/bin/env python3
"""Failure injection and recovery with bounded rollback.

Simulates a 5-process pipeline under the FDAS protocol with RDT-LGC garbage
collection, injects three crashes at different points of the execution and
shows, for every recovery session: which process failed, the recovery line the
centralized manager computed (Lemma 1), how many general checkpoints were lost
(always bounded — no domino effect, by RDT), and what Algorithm 3 collected
while rebuilding each process's UC table.

It also demonstrates that garbage collection never endangers recovery: after
every session the audit confirms that all checkpoints required by Theorem 1
were still on stable storage.
"""

from repro import FailureSchedule, SimulationConfig, SimulationRunner
from repro.analysis.tables import TextTable
from repro.simulation.workloads import PipelineWorkload


def main() -> None:
    config = SimulationConfig(
        num_processes=5,
        duration=400.0,
        workload=PipelineWorkload(stage_period=2.0, mean_checkpoint_gap=10.0),
        protocol="fdas",
        collector="rdt-lgc",
        failures=FailureSchedule.of([(120.0, 1), (230.0, 4), (310.0, 0)]),
        seed=2024,
        audit="full",
    )
    result = SimulationRunner(config).run()

    table = TextTable(
        ["time", "failed", "recovery line", "processes rolled back", "lost ckpts",
         "collected by Alg. 3"],
        title="Recovery sessions (pipeline workload, FDAS + RDT-LGC)",
    )
    for record in result.recoveries:
        table.add_row(
            f"{record.time:.0f}",
            f"p{record.faulty[0]}",
            record.recovery_line,
            record.rolled_back_processes,
            record.lost_general_checkpoints,
            record.collected_during_recovery,
        )
    print(table.render())

    print()
    print(f"checkpoints taken over the run : {result.total_checkpoints}")
    print(f"collected during normal periods: {result.total_collected}")
    print(f"retained per process at the end: {list(result.retained_final)}")
    print(f"every audit safe (Theorem 4)   : {result.all_audits_safe}")
    print(f"every audit optimal (Theorem 5): {result.all_audits_optimal}")
    print(
        "\nNote how each crash loses only the work since the failed process's "
        "last checkpoint plus the orphaned suffixes of its peers — the RDT "
        "property keeps rollbacks local, and garbage collection never removed "
        "a checkpoint any recovery line needed."
    )


if __name__ == "__main__":
    main()
