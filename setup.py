"""Legacy setup shim.

The package metadata lives in ``pyproject.toml``; this file exists so that the
project can be installed in environments whose tooling predates PEP 660
editable installs (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
