"""Corpus persistence tests: content addressing, round-trips, error paths."""

from __future__ import annotations

import hashlib
import json

import os

import pytest

from repro.explore import ExploreConfig, ScheduleExecutor, StepKind, ring_program
from repro.fuzz import (
    Corpus,
    CorpusEntry,
    eager_schedule,
    entry_id,
    lazy_schedule,
    replay_corpus_entry,
    state_features,
)


def _config():
    return ExploreConfig(num_processes=2, program=ring_program(2, 4))


def _entry(config, schedule, **overrides):
    captured = []
    outcome = ScheduleExecutor(config).execute(
        schedule, state_probe=captured.append
    )
    assert outcome.violation is None
    features = tuple(sorted(state_features(captured[0]), key=repr))
    fields = dict(
        entry_id=entry_id(config, schedule),
        config=config,
        schedule=tuple(schedule),
        features=features,
    )
    fields.update(overrides)
    return CorpusEntry(**fields)


class TestEntryId:
    def test_stable_across_calls_and_tuple_vs_list(self):
        config = _config()
        schedule = eager_schedule(config)
        assert entry_id(config, schedule) == entry_id(config, list(schedule))
        assert len(entry_id(config, schedule)) == 16

    def test_distinguishes_schedule_and_config(self):
        config = _config()
        other = ExploreConfig(
            num_processes=2, program=ring_program(2, 4, crash_pid=0)
        )
        assert entry_id(config, eager_schedule(config)) != entry_id(
            config, lazy_schedule(config)
        )
        assert entry_id(config, eager_schedule(config)) != entry_id(
            other, eager_schedule(other)
        )

    def test_known_construction(self):
        # Pin the hash construction: canonical JSON of config + schedule.
        config = _config()
        schedule = eager_schedule(config)
        canonical = json.dumps(
            {
                "config": config.describe(),
                "schedule": [list(token) for token in schedule],
            },
            sort_keys=True,
            separators=(",", ":"),
        )
        expected = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
        assert entry_id(config, schedule) == expected


class TestCorpusAdd:
    def test_add_persists_artifact_and_save_round_trips(self, tmp_path):
        config = _config()
        corpus = Corpus(root=str(tmp_path / "c"))
        entry = _entry(config, eager_schedule(config))
        path = corpus.add(entry)
        corpus.save()
        assert path == corpus.entry_path(entry)
        assert os.path.exists(path)
        loaded = Corpus.load(str(tmp_path / "c"))
        assert set(loaded.entries) == {entry.entry_id}
        assert loaded.entries[entry.entry_id] == entry

    def test_re_adding_same_input_is_a_noop(self, tmp_path):
        config = _config()
        corpus = Corpus(root=str(tmp_path / "c"))
        entry = _entry(config, eager_schedule(config))
        corpus.add(entry)
        before = open(corpus.entry_path(entry), "rb").read()
        assert corpus.add(entry) is None
        assert len(corpus) == 1
        assert open(corpus.entry_path(entry), "rb").read() == before

    def test_in_memory_corpus_skips_disk(self):
        config = _config()
        corpus = Corpus(root=None)
        entry = _entry(config, eager_schedule(config))
        assert corpus.add(entry) is None
        assert len(corpus) == 1
        assert corpus.entry_path(entry) is None
        assert corpus.counterexamples_dir() is None
        corpus.save()  # no-op without a root

    def test_adding_a_violating_schedule_is_an_error(self, tmp_path):
        crash = ExploreConfig(
            num_processes=2, program=ring_program(2, 4, crash_pid=0)
        )
        # Deliver every message after the crash: recovery has discarded the
        # in-flight ones, so execution rejects the schedule.
        crash_step = next(
            i for i, s in enumerate(crash.program) if s.kind is StepKind.CRASH
        )
        deliveries = [t for t in lazy_schedule(crash) if t[0] == "d"]
        bad = tuple(
            [("a", i) for i in range(crash_step + 1)]
            + deliveries
            + [("a", i) for i in range(crash_step + 1, len(crash.program))]
        )
        outcome = ScheduleExecutor(crash).execute(bad)
        if outcome.violation is None:
            pytest.skip("schedule unexpectedly clean under this custody model")
        corpus = Corpus(root=str(tmp_path / "c"))
        entry = CorpusEntry(
            entry_id=entry_id(crash, bad), config=crash, schedule=bad, features=()
        )
        with pytest.raises(RuntimeError, match="violated while persisting"):
            corpus.add(entry)


class TestReplayErrors:
    def test_replaying_a_trace_without_provenance_is_a_value_error(self, tmp_path):
        config = _config()
        path = str(tmp_path / "bare.trace.jsonl")
        ScheduleExecutor(config).execute(eager_schedule(config), trace_path=path)
        lines = open(path, encoding="utf-8").read().splitlines()
        header = json.loads(lines[0])
        header["meta"] = {}
        lines[0] = json.dumps(header, separators=(",", ":"))
        stripped = str(tmp_path / "stripped.trace.jsonl")
        with open(stripped, "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="provenance"):
            replay_corpus_entry(stripped)

    def test_replaying_missing_file_raises(self, tmp_path):
        with pytest.raises(OSError):
            replay_corpus_entry(str(tmp_path / "absent.trace.jsonl"))
