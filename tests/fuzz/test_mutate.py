"""Mutation-operator tests: every result is well-formed and complete."""

from __future__ import annotations

import random

from repro.explore import ExploreConfig, ring_program, validate_schedule
from repro.fuzz import complete, eager_schedule, lazy_schedule, splice
from repro.fuzz.mutate import MUTATORS, is_wellformed


def _configs():
    return (
        ExploreConfig(num_processes=2, program=ring_program(2, 4)),
        ExploreConfig(num_processes=2, program=ring_program(2, 4, crash_pid=0)),
        ExploreConfig(num_processes=3, program=ring_program(3, 6, crash_pid=1)),
    )


def _advance_count(schedule):
    return sum(1 for token in schedule if token[0] == "a")


class TestComplete:
    def test_appends_missing_program_steps_in_order(self):
        config = _configs()[0]
        partial = eager_schedule(config)[:3]
        completed = complete(config, partial)
        assert completed[: len(partial)] == partial
        assert _advance_count(completed) == len(config.program)
        validate_schedule(config, completed)

    def test_complete_schedule_is_untouched(self):
        config = _configs()[0]
        schedule = eager_schedule(config)
        assert complete(config, schedule) == schedule


class TestOperatorsPreserveWellFormedness:
    def test_every_operator_yields_valid_complete_schedules(self):
        rng = random.Random(0)
        for config in _configs():
            produced = {name: 0 for name, _ in MUTATORS}
            for base in (eager_schedule(config), lazy_schedule(config)):
                for name, mutator in MUTATORS:
                    for _ in range(30):
                        candidate = mutator(rng, config, base)
                        if candidate is None:
                            continue
                        produced[name] += 1
                        assert is_wellformed(config, candidate), (name, candidate)
                        assert _advance_count(candidate) == len(config.program)
                        assert candidate != base
            # These operators always apply somewhere across the two bases
            # (hasten only on the lazy base: eager deliveries are already
            # as early as legal; shift-crash needs a delivery adjacent to
            # the crash, which neither canonical base has).
            for name in ("swap", "delay", "hasten", "drop"):
                assert produced[name] > 0, name

    def test_reinstate_inverts_drop(self):
        rng = random.Random(1)
        config = _configs()[0]
        base = eager_schedule(config)
        from repro.fuzz.mutate import drop_delivery, reinstate_delivery

        dropped = drop_delivery(rng, config, base)
        assert dropped is not None
        restored = None
        for _ in range(50):
            restored = reinstate_delivery(rng, config, dropped)
            if restored is not None:
                break
        assert restored is not None
        deliveries = {token[1] for token in restored if token[0] == "d"}
        assert deliveries == {0, 1, 2, 3}

    def test_shift_crash_needs_a_crash_step(self):
        rng = random.Random(2)
        from repro.fuzz.mutate import shift_crash

        crashless = _configs()[0]
        assert shift_crash(rng, crashless, eager_schedule(crashless)) is None

    def test_shift_crash_moves_crash_relative_to_deliveries(self):
        rng = random.Random(3)
        from repro.explore import StepKind
        from repro.fuzz.mutate import shift_crash

        config = _configs()[1]
        # Build a base with every delivery right after the crash advance —
        # the canonical bases keep deliveries away from the crash, where
        # shift_crash has no room to move.
        crash_step = next(
            i
            for i, step in enumerate(config.program)
            if step.kind is StepKind.CRASH
        )
        deliveries = [
            token for token in lazy_schedule(config) if token[0] == "d"
        ]
        base = tuple(
            [("a", i) for i in range(crash_step + 1)]
            + deliveries
            + [("a", i) for i in range(crash_step + 1, len(config.program))]
        )
        assert is_wellformed(config, base)
        moved = None
        for _ in range(50):
            moved = shift_crash(rng, config, base)
            if moved is not None:
                break
        assert moved is not None
        assert moved != base
        assert is_wellformed(config, moved)


class TestSplice:
    def test_splice_crosses_two_schedules(self):
        rng = random.Random(4)
        for config in _configs():
            first = eager_schedule(config)
            second = lazy_schedule(config)
            produced = 0
            for _ in range(40):
                candidate = splice(rng, config, first, second)
                if candidate is None:
                    continue
                produced += 1
                assert is_wellformed(config, candidate)
                assert _advance_count(candidate) == len(config.program)
            assert produced > 0

    def test_splice_is_deterministic_per_rng_state(self):
        config = _configs()[0]
        first = eager_schedule(config)
        second = lazy_schedule(config)
        a = splice(random.Random(5), config, first, second)
        b = splice(random.Random(5), config, first, second)
        assert a == b
