"""Coverage-signal tests: buckets, feature extraction, map round-trip."""

from __future__ import annotations

from repro.explore import ExploreConfig, ScheduleExecutor, ring_program
from repro.fuzz import CoverageMap, eager_schedule, lazy_schedule, state_features


class TestBucket:
    def test_exact_then_ranged(self):
        from repro.fuzz.coverage import bucket

        assert [bucket(n) for n in range(10)] == [0, 1, 2, 3, 4, 4, 5, 5, 5, 6]
        assert bucket(13) == 6
        assert bucket(14) == 7
        assert bucket(1000) == 7


class TestStateFeatures:
    def _features(self, config, schedule):
        captured = []
        outcome = ScheduleExecutor(config).execute(
            schedule, state_probe=captured.append
        )
        assert outcome.violation is None
        return state_features(captured[0])

    def test_features_are_hashable_tagged_tuples(self):
        config = ExploreConfig(num_processes=2, program=ring_program(2, 4))
        features = self._features(config, eager_schedule(config))
        assert features
        tags = {feature[0] for feature in features}
        assert tags <= {"zz", "scc", "useless", "ret", "rl", "pend"}
        # Every execution reports the always-on dimensions.
        assert {"scc", "useless", "ret", "pend"} <= tags

    def test_different_schedules_differ_somewhere(self):
        config = ExploreConfig(num_processes=2, program=ring_program(2, 4))
        eager = self._features(config, eager_schedule(config))
        lazy = self._features(config, lazy_schedule(config))
        assert eager != lazy

    def test_crash_execution_reports_recovery_lines(self):
        config = ExploreConfig(
            num_processes=2, program=ring_program(2, 4, crash_pid=0)
        )
        features = self._features(config, eager_schedule(config))
        assert any(feature[0] == "rl" for feature in features)

    def test_extraction_is_deterministic(self):
        config = ExploreConfig(num_processes=2, program=ring_program(2, 4))
        schedule = eager_schedule(config)
        assert self._features(config, schedule) == self._features(config, schedule)


class TestCoverageMap:
    def test_observe_returns_only_novel_features(self):
        coverage = CoverageMap()
        first = coverage.observe(frozenset({("zz", 0, 1, 1), ("pend", 0)}))
        assert first == {("zz", 0, 1, 1), ("pend", 0)}
        second = coverage.observe(frozenset({("zz", 0, 1, 1), ("pend", 2)}))
        assert second == {("pend", 2)}
        assert len(coverage) == 3
        assert coverage.observed == 2

    def test_dimension_counts(self):
        coverage = CoverageMap()
        coverage.observe(frozenset({("zz", 0, 1, 1), ("zz", 1, 0, -1), ("pend", 0)}))
        assert coverage.dimension_counts() == {"pend": 1, "zz": 2}

    def test_document_round_trip(self):
        coverage = CoverageMap()
        coverage.observe(frozenset({("zz", 0, 1, 1), ("pend", 0)}))
        coverage.observe(frozenset({("ret", 1, 2, 3)}))
        rebuilt = CoverageMap.from_document(coverage.as_document())
        assert rebuilt.observed == coverage.observed
        assert rebuilt.first_seen == coverage.first_seen
        # Novelty verdicts continue where the original stopped.
        assert rebuilt.observe(frozenset({("pend", 0)})) == frozenset()
