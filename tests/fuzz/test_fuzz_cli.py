"""``python -m repro fuzz`` command-line behaviour and exit codes."""

from __future__ import annotations

import glob
import json

import pytest

from repro.cli import main as repro_main
from repro.fuzz.cli import main


class TestRun:
    def test_clean_run_exits_zero_and_reports(self, tmp_path, capsys):
        report = str(tmp_path / "report.json")
        code = main(
            [
                "run", "--target", "ring", "--budget", "40",
                "--corpus", str(tmp_path / "corpus"),
                "--report", report,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "fuzz ring (guided)" in out
        assert "corpus saved" in out
        document = json.loads(open(report, encoding="utf-8").read())
        assert document["target"] == "ring"
        assert document["stats"]["executions"] <= 40
        assert document["findings"] == []

    def test_violating_run_exits_one_and_persists_counterexample(
        self, tmp_path, capsys
    ):
        corpus = str(tmp_path / "corpus")
        code = main(
            [
                "run", "--target", "canary-hoarder", "--budget", "200",
                "--corpus", corpus, "--stop-after-findings", "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "VIOLATION [optimality]" in out
        assert "replay with: python -m repro explore replay" in out
        assert glob.glob(corpus + "/counterexamples/*.trace.jsonl")

    def test_expect_violations_flips_the_exit_code(self, tmp_path, capsys):
        argv = [
            "run", "--target", "canary-hoarder", "--budget", "200",
            "--corpus", str(tmp_path / "corpus"),
            "--stop-after-findings", "1", "--expect-violations", "1",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(
            ["run", "--target", "ring", "--budget", "20",
             "--expect-violations", "1"]
        ) == 1
        assert "expected exactly 1" in capsys.readouterr().err

    def test_unknown_target_is_a_usage_error(self, capsys):
        assert main(["run", "--target", "bogus"]) == 2
        assert "accepted" in capsys.readouterr().err


class TestReplayAndStats:
    @pytest.fixture()
    def corpus(self, tmp_path):
        root = str(tmp_path / "corpus")
        code = main(["run", "--target", "ring-crash", "--budget", "60",
                     "--corpus", root])
        assert code == 0
        return root

    def test_replay_round_trips_an_entry(self, corpus, capsys):
        entry = sorted(glob.glob(corpus + "/entries/*.trace.jsonl"))[0]
        assert main(["replay", entry]) == 0
        assert "byte-identical re-execution: yes" in capsys.readouterr().out

    def test_stats_summarises_the_corpus(self, corpus, capsys):
        assert main(["stats", corpus]) == 0
        out = capsys.readouterr().out
        assert "entries" in out and "coverage" in out
        assert "origins:" in out


class TestUmbrellaDispatch:
    def test_repro_fuzz_routes_to_the_fuzzer(self, capsys):
        code = repro_main(["fuzz", "run", "--target", "ring", "--budget",
                           "15", "--explorer-seeds", "0"])
        assert code == 0
        assert "fuzz ring (guided)" in capsys.readouterr().out
