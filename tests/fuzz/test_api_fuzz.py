"""The ``fuzz`` spec kind of the :mod:`repro.api` façade."""

from __future__ import annotations

import json

import pytest

from repro.api import SpecValidationError, load_spec, run
from repro.fuzz import FuzzResult, FuzzSpec
from repro.scenarios.experiments import fuzz_target_configs


class TestLoadSpec:
    def test_named_target_document(self):
        spec = load_spec({"kind": "fuzz", "target": "ring", "budget": 50})
        assert isinstance(spec, FuzzSpec)
        assert spec.target.name == "ring"
        assert spec.budget == 50
        assert spec.guided and spec.minimize

    def test_kind_is_inferred_from_target_or_budget(self):
        assert isinstance(load_spec({"target": "ring"}), FuzzSpec)
        assert isinstance(load_spec({"target": "ring", "budget": 10}), FuzzSpec)

    def test_inline_program_document(self):
        spec = load_spec(
            {
                "kind": "fuzz",
                "num_processes": 2,
                "program": [
                    {"op": "send", "pid": 0, "target": 1},
                    {"op": "send", "pid": 1, "target": 0},
                    {"op": "checkpoint", "pid": 0},
                ],
                "budget": 20,
            }
        )
        assert isinstance(spec, FuzzSpec)
        assert spec.target.name == "custom"
        assert spec.target.config.num_processes == 2

    def test_json_file_round_trip(self, tmp_path):
        path = tmp_path / "fuzz.json"
        path.write_text(json.dumps({"kind": "fuzz", "target": "ring-crash"}))
        spec = load_spec(str(path))
        assert isinstance(spec, FuzzSpec)
        assert spec.target.name == "ring-crash"

    def test_already_built_spec_passes_through(self):
        spec = load_spec({"kind": "fuzz", "target": "ring"})
        assert load_spec(spec) is spec

    def test_unknown_target_names_accepted_set(self):
        with pytest.raises(SpecValidationError) as exc:
            load_spec({"kind": "fuzz", "target": "bogus"})
        assert exc.value.accepted
        assert "ring" in exc.value.accepted

    def test_unknown_key_is_rejected(self):
        with pytest.raises(SpecValidationError, match="unknown fuzz spec key"):
            load_spec({"kind": "fuzz", "target": "ring", "wat": 1})

    def test_target_and_program_conflict(self):
        with pytest.raises(SpecValidationError, match="not both"):
            load_spec(
                {
                    "kind": "fuzz",
                    "target": "ring",
                    "program": [{"op": "checkpoint", "pid": 0}],
                }
            )


class TestRun:
    def test_run_returns_a_fuzz_result(self):
        result = run(
            {"kind": "fuzz", "target": "ring", "budget": 30, "minimize": False}
        )
        assert isinstance(result, FuzzResult)
        assert result.ok
        assert result.stats.executions <= 30

    def test_max_executions_overrides_budget(self):
        result = run(
            {"kind": "fuzz", "target": "ring", "budget": 500},
            max_executions=15,
        )
        assert result.stats.executions <= 15

    def test_campaign_only_options_are_rejected(self, tmp_path):
        with pytest.raises(SpecValidationError, match="campaign"):
            run(
                {"kind": "fuzz", "target": "ring", "budget": 5},
                store=str(tmp_path / "results.sqlite"),
            )


class TestExperimentGrid:
    def test_default_grid_covers_clean_targets(self):
        specs = fuzz_target_configs(budget=10)
        assert specs
        assert {spec.target.name for spec in specs} == {
            "ring", "ring-crash", "ring3-crash", "star-crash", "gossip",
        }
        assert all(isinstance(spec, FuzzSpec) for spec in specs)
        assert all(spec.budget == 10 for spec in specs)

    def test_target_by_seed_grid(self):
        specs = fuzz_target_configs(targets=("ring",), seeds=(0, 1, 2))
        assert len(specs) == 3
        assert [spec.seed for spec in specs] == [0, 1, 2]

    def test_unknown_target_is_rejected(self):
        with pytest.raises(ValueError, match="accepted"):
            fuzz_target_configs(targets=("bogus",))
