"""Fuzz-loop tests: determinism, corpus replay, violation re-finding."""

from __future__ import annotations

import glob
import json
import os

import pytest

from repro.explore import (
    ExploreConfig,
    canaries_registered,
    replay_counterexample,
    ring_program,
)
from repro.fuzz import (
    Corpus,
    builtin_targets,
    fuzz,
    replay_corpus_entry,
    resolve_target,
)

#: Budget the violating targets must be re-found within (cold corpus).
REFIND_BUDGET = 2000


class TestDeterminism:
    def test_same_seed_and_budget_reproduce_corpus_and_coverage(self, tmp_path):
        a = fuzz("ring-crash", budget=100, seed=7, corpus=str(tmp_path / "a"))
        b = fuzz("ring-crash", budget=100, seed=7, corpus=str(tmp_path / "b"))
        index_a = (tmp_path / "a" / "index.json").read_text()
        index_b = (tmp_path / "b" / "index.json").read_text()
        assert index_a == index_b
        assert a.stats.as_dict() == b.stats.as_dict()
        entries_a = sorted(glob.glob(str(tmp_path / "a" / "entries" / "*")))
        entries_b = sorted(glob.glob(str(tmp_path / "b" / "entries" / "*")))
        assert [os.path.basename(p) for p in entries_a] == [
            os.path.basename(p) for p in entries_b
        ]
        for path_a, path_b in zip(entries_a, entries_b):
            assert open(path_a, "rb").read() == open(path_b, "rb").read()

    def test_different_seeds_diverge(self):
        a = fuzz("ring", budget=80, seed=0, explorer_seed_executions=0)
        b = fuzz("ring", budget=80, seed=1, explorer_seed_executions=0)
        assert set(a.corpus.entries) != set(b.corpus.entries)


class TestCorpusReplay:
    def test_every_persisted_entry_replays_byte_identically(self, tmp_path):
        fuzz("ring-crash", budget=80, seed=3, corpus=str(tmp_path / "c"))
        paths = glob.glob(str(tmp_path / "c" / "entries" / "*.trace.jsonl"))
        assert paths
        for path in paths:
            replay = replay_corpus_entry(path)
            assert replay.byte_identical, path
            assert replay.trace_events > 0

    def test_warm_corpus_resumes_without_duplicating(self, tmp_path):
        root = str(tmp_path / "warm")
        cold = fuzz("ring", budget=80, seed=0, corpus=root)
        warm = fuzz("ring", budget=40, seed=1, corpus=root)
        # The warm run loaded the cold run's coverage: nothing it reaches
        # at this size is novel, so the corpus does not grow.
        assert len(warm.corpus) == len(cold.corpus)
        assert warm.stats.corpus_added == 0
        index = json.loads((tmp_path / "warm" / "index.json").read_text())
        assert len(index["entries"]) == len(cold.corpus)

    def test_index_round_trips_through_load(self, tmp_path):
        root = str(tmp_path / "rt")
        run = fuzz("ring", budget=60, seed=2, corpus=root)
        loaded = Corpus.load(root)
        assert set(loaded.entries) == set(run.corpus.entries)
        assert len(loaded.coverage) == len(run.corpus.coverage)
        for entry in loaded.ordered():
            assert entry.config == run.target.config
            assert entry.features


class TestViolationRefinding:
    @pytest.mark.parametrize(
        "target,expected_kind",
        [
            ("canary-unsafe", "safety"),
            ("canary-hoarder", "optimality"),
            ("ms-window", "safety"),
        ],
    )
    def test_violating_targets_are_refound_and_shrunk(
        self, tmp_path, target, expected_kind
    ):
        result = fuzz(
            target,
            budget=REFIND_BUDGET,
            seed=0,
            corpus=str(tmp_path / target),
            stop_after_findings=1,
        )
        assert not result.ok
        kinds = [finding.violation.kind for finding in result.findings]
        assert expected_kind in kinds
        finding = result.findings[0]
        assert finding.shrunk is not None
        assert len(finding.shrunk.schedule) <= len(finding.schedule)
        # The persisted counterexample is a replayable explorer artifact.
        assert finding.artifact is not None and os.path.exists(finding.artifact)
        with canaries_registered():
            replay = replay_counterexample(finding.artifact)
        assert replay.byte_identical
        assert replay.replayed_violation.kind == expected_kind

    def test_clean_targets_stay_clean(self):
        result = fuzz("ring", budget=150, seed=0)
        assert result.ok
        assert result.stats.violations == 0

    def test_crash_boundary_candidates_are_invalid_not_violations(self):
        result = fuzz("ring-crash", budget=150, seed=0)
        assert result.ok
        assert result.stats.invalid > 0


class TestGuidance:
    def test_guided_reaches_more_coverage_than_random(self):
        guided = fuzz(
            "ring3-crash", budget=150, seed=0,
            guided=True, minimize=False, explorer_seed_executions=0,
        )
        unguided = fuzz(
            "ring3-crash", budget=150, seed=0,
            guided=False, minimize=False, explorer_seed_executions=0,
        )
        assert guided.stats.features > unguided.stats.features
        # The baseline retains nothing: its corpus stays empty.
        assert len(unguided.corpus) == 0

    def test_budget_is_respected(self):
        result = fuzz("ring", budget=25, seed=0, explorer_seed_executions=0)
        assert result.stats.executions <= 25


class TestTargets:
    def test_builtin_targets_resolve(self):
        targets = builtin_targets()
        assert {
            "ring", "ring-crash", "ring3-crash", "star-crash", "gossip",
            "canary-unsafe", "canary-hoarder", "ms-window",
        } <= set(targets)
        for name, target in targets.items():
            assert resolve_target(name) == target

    def test_unknown_target_is_a_value_error_naming_accepted(self):
        with pytest.raises(ValueError, match="accepted"):
            resolve_target("bogus")

    def test_bare_config_becomes_a_custom_target(self):
        config = ExploreConfig(num_processes=2, program=ring_program(2, 2))
        target = resolve_target(config)
        assert target.name == "custom"
        assert target.config == config
