"""Tests for the analysis helpers and the ASCII diagrams."""

import pytest

from repro.analysis.metrics import aggregate, aggregate_results
from repro.analysis.storage import occupancy_series, summarize_occupancy
from repro.analysis.tables import TextTable
from repro.scenarios.experiments import run_random_simulation
from repro.scenarios.figures import figure1_ccp
from repro.viz.ascii_diagram import render_ccp, render_gc_trace


class TestAggregation:
    def test_aggregate_statistics(self):
        stats = aggregate([1.0, 2.0, 3.0])
        assert stats.mean == 2.0
        assert stats.minimum == 1.0
        assert stats.maximum == 3.0
        assert stats.count == 3

    def test_spread_is_the_sample_stdev(self):
        # Seeded runs are a sample of the run distribution, so the spread must
        # use the n-1 estimator, not the population one.
        import statistics

        values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]
        stats = aggregate(values)
        assert stats.stdev == pytest.approx(statistics.stdev(values))
        assert stats.stdev > statistics.pstdev(values)

    def test_single_observation_has_zero_spread(self):
        assert aggregate([7.0]).stdev == 0.0

    def test_str_surfaces_the_spread(self):
        text = str(aggregate([1.0, 3.0]))
        assert "±" in text and "n=2" in text

    def test_aggregate_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate([])

    def test_aggregate_results_over_seeds(self):
        results = [
            run_random_simulation(duration=40.0, seed=seed, num_processes=3)
            for seed in (0, 1)
        ]
        stats = aggregate_results(
            results,
            {
                "peak": lambda r: r.peak_total_retained,
                "collected": lambda r: r.total_collected,
            },
        )
        assert set(stats) == {"peak", "collected"}
        assert stats["peak"].count == 2

    def test_aggregate_results_empty_rejected(self):
        with pytest.raises(ValueError):
            aggregate_results([], {"x": lambda r: 0.0})


class TestOccupancy:
    def test_series_and_summary(self):
        result = run_random_simulation(duration=60.0, seed=3, num_processes=3)
        series = occupancy_series(result)
        assert series and all(total >= 0 for _, total in series)
        summary = summarize_occupancy(result)
        assert summary.peak_total >= summary.final_total >= 0
        assert summary.peak_per_process <= result.config.num_processes + 1
        assert len(summary.as_row()) == 5


class TestTextTable:
    def test_render_aligns_columns(self):
        table = TextTable(["name", "value"], title="demo")
        table.add_row("alpha", 1)
        table.add_row("b", 123.456)
        text = table.render()
        assert "demo" in text
        assert "alpha" in text and "123.46" in text
        assert table.row_count == 2

    def test_row_arity_checked(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_needs_columns(self):
        with pytest.raises(ValueError):
            TextTable([])

    def test_add_rows(self):
        table = TextTable(["a"])
        table.add_rows([[1], [2]])
        assert table.row_count == 2

    def test_render_csv(self):
        table = TextTable(["name", "value"])
        table.add_row("with,comma", 1.5)
        lines = table.render_csv().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == '"with,comma",1.50'

    def test_render_json_keeps_raw_values(self):
        import json

        table = TextTable(["name", "value"], title="demo")
        table.add_row("alpha", 123.456)
        document = json.loads(table.render_json())
        assert document["title"] == "demo"
        assert document["rows"] == [{"name": "alpha", "value": 123.456}]


class TestAsciiDiagrams:
    def test_render_ccp_mentions_every_process(self):
        text = render_ccp(figure1_ccp())
        assert "p0:" in text and "p1:" in text and "p2:" in text
        assert "[0]" in text

    def test_render_ccp_respects_max_width(self):
        text = render_ccp(figure1_ccp(), max_width=40)
        assert all(len(line) <= 40 for line in text.splitlines())

    def test_render_gc_trace(self):
        text = render_gc_trace(
            [("p2 s^1", (1, 1, 0), (0, 1, None)), ("p2 final", (1, 4, 2), (0, 3, 1))]
        )
        assert "p2 s^1" in text
        assert "*" in text  # Null entries rendered as the paper's asterisk
