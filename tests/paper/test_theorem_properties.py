"""Randomized property tests for the paper's theorems.

These tests drive the *whole* stack on randomly generated executions (several
protocols, workloads and seeds) and check the paper's claims against the
independent oracles:

* RDT protocols produce RD-trackable patterns (the standing assumption);
* Equation (2): recorded dependency vectors equal the ground-truth transitive
  dependencies;
* Theorem 1 == Definition 7 (needlessness), Theorem 2 ⊆ Theorem 1,
  Corollary 1 == Theorem 2;
* Lemma 1 == Definition 5 (recovery lines);
* Theorem 4 (safety) and Theorem 5 (optimality) of RDT-LGC, online, including
  across injected failures;
* the per-process space bound of Section 4.5.
"""

import itertools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.scenarios.experiments import run_random_simulation
from repro.ccp.rdt import check_rdt
from repro.core.obsolete import (
    needless_stable_checkpoints,
    obsolete_stable_checkpoints_corollary1,
    obsolete_stable_checkpoints_theorem1,
    obsolete_stable_checkpoints_theorem2,
)
from repro.recovery.recovery_line import recovery_line, recovery_line_brute_force


def _small_run(seed: int, protocol: str = "fdas", crashes: int = 0):
    return run_random_simulation(
        num_processes=3,
        duration=60.0,
        seed=seed,
        protocol=protocol,
        collector="rdt-lgc",
        crashes=crashes,
        audit="full",
        mean_message_gap=3.0,
        mean_checkpoint_gap=9.0,
    )


class TestRdtProtocolsProduceRdtPatterns:
    @pytest.mark.parametrize("protocol", ["fdas", "fdi", "cbr"])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_protocol_guarantees_rdt(self, protocol, seed):
        result = run_random_simulation(
            num_processes=4,
            duration=80.0,
            seed=seed,
            protocol=protocol,
            collector="none",
            mean_message_gap=2.5,
            mean_checkpoint_gap=8.0,
        )
        assert result.final_ccp is not None
        assert check_rdt(result.final_ccp, collect_witnesses=False).is_rdt

    def test_uncoordinated_protocol_eventually_violates_rdt(self):
        violations = 0
        for seed in range(4):
            result = run_random_simulation(
                num_processes=3,
                duration=80.0,
                seed=seed,
                protocol="uncoordinated",
                collector="none",
                mean_message_gap=2.0,
                mean_checkpoint_gap=6.0,
            )
            assert result.final_ccp is not None
            if not check_rdt(result.final_ccp, collect_witnesses=False).is_rdt:
                violations += 1
        assert violations > 0


class TestEquationTwo:
    @pytest.mark.parametrize("seed", [0, 3, 7])
    def test_recorded_vectors_equal_ground_truth(self, seed):
        result = _small_run(seed)
        ccp = result.final_ccp
        assert ccp is not None
        for pid in ccp.processes:
            for cid in ccp.stable_ids(pid):
                recorded = ccp.checkpoint(cid).dependency_vector
                assert recorded == ccp.ground_truth_dv(cid)


class TestObsoleteCharacterisations:
    @pytest.mark.parametrize("seed", [0, 5])
    def test_needless_equals_theorem1(self, seed):
        ccp = _small_run(seed).final_ccp
        assert ccp is not None
        assert needless_stable_checkpoints(ccp) == obsolete_stable_checkpoints_theorem1(ccp)

    @pytest.mark.parametrize("seed", [0, 5, 9])
    def test_theorem2_subset_of_theorem1_and_corollary1_matches(self, seed):
        ccp = _small_run(seed).final_ccp
        assert ccp is not None
        theorem1 = obsolete_stable_checkpoints_theorem1(ccp)
        theorem2 = obsolete_stable_checkpoints_theorem2(ccp)
        assert theorem2 <= theorem1
        assert obsolete_stable_checkpoints_corollary1(ccp) == theorem2


class TestRecoveryLineLemma:
    @pytest.mark.parametrize("seed", [1, 4])
    def test_lemma1_matches_definition5_for_all_faulty_sets(self, seed):
        ccp = _small_run(seed).final_ccp
        assert ccp is not None
        processes = list(ccp.processes)
        for size in range(1, len(processes) + 1):
            for faulty in itertools.combinations(processes, size):
                assert recovery_line(ccp, faulty) == recovery_line_brute_force(ccp, faulty)


class TestRdtLgcSafetyAndOptimality:
    @pytest.mark.parametrize("seed", list(range(6)))
    def test_safe_and_optimal_without_failures(self, seed):
        result = _small_run(seed)
        assert result.all_audits_safe
        assert result.all_audits_optimal

    @pytest.mark.parametrize("seed", list(range(4)))
    def test_safe_and_optimal_with_failures(self, seed):
        result = _small_run(seed, crashes=2)
        assert len(result.recoveries) >= 1
        assert result.all_audits_safe
        assert result.all_audits_optimal

    @pytest.mark.parametrize("protocol", ["fdi", "cbr"])
    def test_safe_and_optimal_under_other_rdt_protocols(self, protocol):
        result = _small_run(2, protocol=protocol)
        assert result.all_audits_safe
        assert result.all_audits_optimal

    @settings(max_examples=8, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(seed=st.integers(min_value=100, max_value=10_000))
    def test_safety_holds_for_arbitrary_seeds(self, seed):
        result = run_random_simulation(
            num_processes=3,
            duration=40.0,
            seed=seed,
            protocol="fdas",
            collector="rdt-lgc",
            audit="full",
            mean_message_gap=2.0,
            mean_checkpoint_gap=6.0,
        )
        assert result.all_audits_safe
        assert result.all_audits_optimal


class TestSpaceBound:
    @pytest.mark.parametrize("num_processes", [2, 4, 6])
    def test_per_process_bound_holds_on_random_workloads(self, num_processes):
        result = run_random_simulation(
            num_processes=num_processes,
            duration=100.0,
            seed=17,
            protocol="fdas",
            collector="rdt-lgc",
            mean_message_gap=2.0,
            mean_checkpoint_gap=5.0,
        )
        assert result.max_retained_any_process <= num_processes + 1
        assert all(r <= num_processes for r in result.retained_final)

    def test_bound_holds_under_message_loss(self):
        result = run_random_simulation(
            num_processes=4,
            duration=100.0,
            seed=23,
            protocol="fdas",
            collector="rdt-lgc",
            drop_probability=0.2,
            audit="full",
        )
        assert result.max_retained_any_process <= 5
        assert result.all_audits_safe
