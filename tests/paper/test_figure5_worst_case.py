"""FIG-5: the worst-case scenario and the space bounds of Section 4.5."""

import pytest

from repro.simulation.runner import SimulationConfig, SimulationRunner
from repro.simulation.workloads import WorstCaseWorkload


def _run_worst_case(num_processes: int, collector: str = "rdt-lgc"):
    workload = WorstCaseWorkload(round_length=10.0)
    config = SimulationConfig(
        num_processes=num_processes,
        duration=workload.required_duration(num_processes),
        workload=workload,
        protocol="fdas",
        collector=collector,
        seed=1,
        audit="full" if collector == "rdt-lgc" else "off",
        keep_final_ccp=True,
    )
    return SimulationRunner(config).run()


class TestFigure5WorstCase:
    @pytest.mark.parametrize("num_processes", [2, 3, 4, 6])
    def test_every_process_reaches_the_n_checkpoint_bound(self, num_processes):
        result = _run_worst_case(num_processes)
        assert result.retained_final == tuple([num_processes] * num_processes)

    @pytest.mark.parametrize("num_processes", [3, 4, 6])
    def test_bound_is_never_exceeded_beyond_the_transient(self, num_processes):
        """At most n retained at rest, n + 1 transiently while a new checkpoint
        is stored but the previous one not yet released (Section 4.5)."""
        result = _run_worst_case(num_processes)
        assert result.max_retained_any_process <= num_processes + 1
        assert all(r <= num_processes for r in result.retained_final)

    def test_worst_case_global_occupancy_is_n_squared_at_rest(self):
        n = 4
        result = _run_worst_case(n)
        assert result.total_retained_final == n * n

    def test_rdt_lgc_remains_safe_and_optimal_in_the_worst_case(self):
        result = _run_worst_case(4)
        assert result.all_audits_safe
        assert result.all_audits_optimal

    def test_worst_case_takes_no_forced_checkpoints_under_fdas(self):
        """The schedule is built so FDAS never forces a checkpoint, keeping the
        checkpoint indices exactly as in the figure."""
        result = _run_worst_case(4)
        assert result.forced_checkpoints == 0

    def test_worst_case_is_a_causal_knowledge_limit_not_a_bug(self):
        """The retained n-per-process checkpoints are exactly what causal
        knowledge allows (Theorem 2 / Theorem 5); global knowledge (Theorem 1,
        i.e. a coordinated collector) could discard far more in this pattern,
        which is precisely the gap control messages buy."""
        from repro.core.obsolete import (
            retained_stable_checkpoints_theorem1,
            retained_stable_checkpoints_theorem2,
        )

        n = 4
        result = _run_worst_case(n)
        assert result.final_ccp is not None
        allowed = retained_stable_checkpoints_theorem2(result.final_ccp)
        required = retained_stable_checkpoints_theorem1(result.final_ccp)
        assert len(allowed) == result.total_retained_final == n * n
        assert len(required) == n  # only each process's last checkpoint
