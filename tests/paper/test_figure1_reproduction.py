"""FIG-1: the example CCP of Figure 1 and every fact the paper states about it."""

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.consistency import GlobalCheckpoint, is_consistent_global_checkpoint
from repro.ccp.rdt import check_rdt
from repro.ccp.zigzag import ZigzagAnalysis


class TestFigure1:
    def test_checkpoint_structure(self, figure1_ccp):
        # p1: s^0, s^1(=s^last), v1; p2: s^0, s^1, v2 = c2^2; p3: s^0, s^1, s^2, v3.
        assert figure1_ccp.last_stable(0) == 1
        assert figure1_ccp.last_stable(1) == 1
        assert figure1_ccp.last_stable(2) == 2
        assert figure1_ccp.volatile_index(1) == 2

    def test_c_paths_and_z_path(self, figure1_ccp):
        analysis = ZigzagAnalysis(figure1_ccp)
        m1, m2, m4, m5 = 0, 1, 2, 3
        assert analysis.is_causal_sequence([m1, m2])
        assert analysis.is_causal_sequence([m1, m4])
        assert analysis.is_zigzag_sequence([m5, m4], CheckpointId(0, 1), CheckpointId(2, 2))
        assert not analysis.is_causal_sequence([m5, m4])

    def test_consistency_examples(self, figure1_ccp):
        consistent = GlobalCheckpoint(
            (figure1_ccp.volatile_index(0), 1, 1)
        )  # {v1, s2^1, s3^1}
        inconsistent = GlobalCheckpoint((0, 1, 1))  # {s1^0, s2^1, s3^1}
        assert is_consistent_global_checkpoint(figure1_ccp, consistent)
        assert not is_consistent_global_checkpoint(figure1_ccp, inconsistent)
        # The reason given in the paper: s1^0 -> s2^1.
        assert figure1_ccp.causally_precedes(CheckpointId(0, 0), CheckpointId(1, 1))

    def test_pattern_is_rd_trackable(self, figure1_ccp):
        assert check_rdt(figure1_ccp).is_rdt

    def test_removing_m3_breaks_rdt_exactly_as_stated(self, figure1_without_m3_ccp):
        ccp = figure1_without_m3_ccp
        analysis = ZigzagAnalysis(ccp)
        assert analysis.zigzag_exists(CheckpointId(0, 1), CheckpointId(2, 2))
        assert not ccp.causally_precedes(CheckpointId(0, 1), CheckpointId(2, 2))
        assert not check_rdt(ccp).is_rdt

    def test_no_useless_checkpoints(self, figure1_ccp):
        assert ZigzagAnalysis(figure1_ccp).useless_checkpoints() == []
