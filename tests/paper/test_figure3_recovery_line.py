"""FIG-3: recovery-line determination and obsolete-checkpoint identification.

The exact message pattern of Figure 3 cannot be reconstructed from the paper's
text (only the checkpoint labels are given), so these tests exercise a
structurally equivalent 4-process scenario (see ``build_figure3`` in the test
fixtures and the note in EXPERIMENTS.md): the recovery line for ``F = {p2, p3}``
excludes the last stable checkpoint of ``p3`` because ``s2^last -> s3^last``,
and Theorem 1 identifies obsolete checkpoints including a "hole" between two
retained checkpoints of the same process.
"""

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.rdt import check_rdt
from repro.core.obsolete import (
    needless_stable_checkpoints,
    obsolete_stable_checkpoints_theorem1,
)
from repro.recovery.recovery_line import recovery_line, recovery_line_brute_force


class TestFigure3RecoveryLine:
    def test_pattern_is_rd_trackable(self, figure3_ccp):
        assert check_rdt(figure3_ccp).is_rdt

    def test_last_stable_of_p2_precedes_last_stable_of_p3(self, figure3_ccp):
        assert figure3_ccp.causally_precedes(
            figure3_ccp.last_stable_id(1), figure3_ccp.last_stable_id(2)
        )

    def test_recovery_line_excludes_p3_last_stable(self, figure3_ccp):
        line = recovery_line(figure3_ccp, [1, 2])
        assert line.indices[2] < figure3_ccp.last_stable(2)

    def test_recovery_line_components(self, figure3_ccp):
        line = recovery_line(figure3_ccp, [1, 2])
        assert line.indices == (1, 2, 1, figure3_ccp.volatile_index(3))

    def test_lemma1_matches_definition5(self, figure3_ccp):
        assert recovery_line(figure3_ccp, [1, 2]) == recovery_line_brute_force(
            figure3_ccp, [1, 2]
        )

    def test_gray_checkpoints_are_exactly_those_preceded_by_faulty_lasts(self, figure3_ccp):
        """Lemma 1's reading: a checkpoint is rolled back iff it is causally
        preceded by the last stable checkpoint of some faulty process."""
        line = recovery_line(figure3_ccp, [1, 2])
        faulty_lasts = [figure3_ccp.last_stable_id(1), figure3_ccp.last_stable_id(2)]
        for pid in figure3_ccp.processes:
            for cid in figure3_ccp.general_ids(pid):
                preceded = any(
                    figure3_ccp.causally_precedes(last, cid) for last in faulty_lasts
                )
                rolled_back = cid.index > line.indices[pid]
                assert preceded == rolled_back


class TestFigure3ObsoleteCheckpoints:
    def test_exact_obsolete_set(self, figure3_ccp):
        obsolete = obsolete_stable_checkpoints_theorem1(figure3_ccp)
        assert obsolete == {
            CheckpointId(0, 0),
            CheckpointId(0, 2),
            CheckpointId(1, 0),
            CheckpointId(1, 1),
            CheckpointId(2, 0),
            CheckpointId(3, 0),
            CheckpointId(3, 1),
            CheckpointId(3, 2),
        }

    def test_obsolete_hole(self, figure3_ccp):
        obsolete = obsolete_stable_checkpoints_theorem1(figure3_ccp)
        assert CheckpointId(0, 2) in obsolete
        assert CheckpointId(0, 1) not in obsolete
        assert CheckpointId(0, 3) not in obsolete

    def test_needlessness_matches(self, figure3_ccp):
        assert needless_stable_checkpoints(figure3_ccp) == (
            obsolete_stable_checkpoints_theorem1(figure3_ccp)
        )
