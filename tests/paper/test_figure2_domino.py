"""FIG-2: useless checkpoints and the domino effect."""

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.rdt import check_rdt
from repro.ccp.zigzag import ZigzagAnalysis
from repro.recovery.recovery_line import recovery_line_brute_force, rolled_back_checkpoints


class TestFigure2:
    def test_all_non_initial_stable_checkpoints_are_useless(self, figure2_ccp):
        useless = set(ZigzagAnalysis(figure2_ccp).useless_checkpoints())
        expected = {CheckpointId(0, 1), CheckpointId(0, 2), CheckpointId(1, 1)}
        assert expected <= useless
        assert CheckpointId(0, 0) not in useless
        assert CheckpointId(1, 0) not in useless

    def test_pattern_is_not_rd_trackable(self, figure2_ccp):
        report = check_rdt(figure2_ccp)
        assert not report.is_rdt
        assert report.useless_checkpoints  # zigzag cycles are RDT violations

    def test_single_failure_causes_total_rollback(self, figure2_ccp):
        """The domino effect: any single failure sends both processes to their
        initial checkpoints."""
        for faulty in (0, 1):
            line = recovery_line_brute_force(figure2_ccp, [faulty])
            assert line.indices == (0, 0)

    def test_every_non_initial_checkpoint_is_lost(self, figure2_ccp):
        line = recovery_line_brute_force(figure2_ccp, [0])
        rolled = rolled_back_checkpoints(figure2_ccp, line)
        stable_rolled = [cid for cid in rolled if figure2_ccp.is_stable(cid)]
        assert set(stable_rolled) == {
            CheckpointId(0, 1),
            CheckpointId(0, 2),
            CheckpointId(1, 1),
        }


class TestDominoAvoidedByRdtProtocols:
    def test_fdas_prevents_the_domino_effect_on_ping_pong_traffic(self):
        """Running ping-pong traffic under FDAS yields an RD-trackable pattern
        with no useless checkpoints, in contrast to Figure 2."""
        from repro.simulation.runner import SimulationConfig, SimulationRunner
        from repro.simulation.workloads import RingWorkload

        config = SimulationConfig(
            num_processes=2,
            duration=80.0,
            workload=RingWorkload(period=3.0, mean_checkpoint_gap=7.0),
            protocol="fdas",
            collector="none",
            seed=11,
            keep_final_ccp=True,
        )
        result = SimulationRunner(config).run()
        assert result.final_ccp is not None
        assert check_rdt(result.final_ccp).is_rdt
        assert ZigzagAnalysis(result.final_ccp).useless_checkpoints() == []

    def test_uncoordinated_protocol_reproduces_useless_checkpoints(self):
        """The same traffic without forced checkpoints produces useless checkpoints."""
        from repro.simulation.runner import SimulationConfig, SimulationRunner
        from repro.simulation.workloads import RingWorkload

        config = SimulationConfig(
            num_processes=2,
            duration=80.0,
            workload=RingWorkload(period=3.0, mean_checkpoint_gap=7.0),
            protocol="uncoordinated",
            collector="none",
            seed=11,
            keep_final_ccp=True,
        )
        result = SimulationRunner(config).run()
        assert result.final_ccp is not None
        assert not check_rdt(result.final_ccp).is_rdt
