"""FIG-4: the worked RDT-LGC execution, reproduced value for value.

The paper annotates selected events of a 3-process execution with the contents
of ``DV`` (stored vector at checkpoint events, current vector elsewhere) and
``UC``.  ``drive_figure4`` replays that execution against real :class:`RdtLgc`
instances; these tests compare every annotation, the set of checkpoints
eliminated online (``s2^2``, ``s3^1``, ``s3^2``) and the one obsolete
checkpoint RDT-LGC cannot identify (``s2^1``).
"""

import pytest

from repro.ccp.checkpoint import CheckpointId
from repro.core.obsolete import (
    obsolete_stable_checkpoints_theorem1,
    obsolete_stable_checkpoints_theorem2,
)
from repro.core.rdt_lgc import RdtLgc
from repro.scenarios.figures import (
    FIGURE4_ANNOTATIONS,
    FIGURE4_EXPECTED_FINAL,
    drive_figure4,
)


@pytest.fixture
def figure4_run():
    gcs = [RdtLgc(pid, 3) for pid in range(3)]
    steps = drive_figure4(gcs)
    return gcs, {label: (dv, uc) for label, dv, uc in steps}


class TestFigure4Annotations:
    def test_every_annotated_state_matches_the_paper(self, figure4_run):
        _, observed = figure4_run
        for label, expected in FIGURE4_ANNOTATIONS.items():
            assert observed[label] == expected, f"mismatch at {label}"

    def test_final_states(self, figure4_run):
        gcs, _ = figure4_run
        for pid, expectations in FIGURE4_EXPECTED_FINAL.items():
            assert gcs[pid].dependency_vector == expectations["dv"]
            assert gcs[pid].uncollected.view() == expectations["uc"]
            assert gcs[pid].retained_indices() == expectations["retained"]


class TestFigure4Eliminations:
    def test_eliminated_checkpoints_match_the_empty_squares(self, figure4_run):
        gcs, _ = figure4_run
        # s2^2 eliminated by p2; s3^1 and s3^2 eliminated by p3.
        assert gcs[1].collected_indices() == [2]
        assert gcs[2].collected_indices() == [1, 2]

    def test_s2_1_is_the_only_unidentified_obsolete_checkpoint(
        self, figure4_run, figure4_ccp
    ):
        gcs, _ = figure4_run
        theorem1 = obsolete_stable_checkpoints_theorem1(figure4_ccp)
        retained = {
            CheckpointId(pid, index)
            for pid, gc in enumerate(gcs)
            for index in gc.retained_indices()
        }
        unidentified = theorem1 & retained
        assert unidentified == {CheckpointId(1, 1)}

    def test_rdt_lgc_collects_exactly_the_theorem2_set(self, figure4_run, figure4_ccp):
        """Theorem 5 on this execution: what was eliminated == what causal
        knowledge can identify."""
        gcs, _ = figure4_run
        eliminated = {
            CheckpointId(pid, index)
            for pid, gc in enumerate(gcs)
            for index in gc.collected_indices()
        }
        assert eliminated == obsolete_stable_checkpoints_theorem2(figure4_ccp)
