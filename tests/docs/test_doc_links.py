"""The committed documentation must pass the CI link checker."""

from __future__ import annotations

import importlib.util
import sys
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
CHECKER = REPO_ROOT / "tools" / "check_doc_links.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_doc_links", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def checker():
    return _load_checker()


class TestCommittedDocs:
    def test_all_relative_links_resolve(self, checker, capsys):
        assert checker.main([str(REPO_ROOT)]) == 0, capsys.readouterr().err

    def test_scan_covers_the_docs_tree(self, checker):
        scanned = {p.relative_to(REPO_ROOT).as_posix() for p in checker.iter_doc_files(REPO_ROOT)}
        assert "README.md" in scanned
        assert "DESIGN.md" in scanned
        expected_pages = {
            "docs/architecture.md",
            "docs/kernel.md",
            "docs/campaign.md",
            "docs/traceio.md",
            "docs/explore-fuzz.md",
            "docs/live.md",
        }
        assert expected_pages <= scanned


class TestCheckerSemantics:
    def _write(self, root: Path, name: str, text: str) -> Path:
        path = root / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(text, encoding="utf-8")
        return path

    def test_broken_relative_link_is_reported(self, checker, tmp_path):
        doc = self._write(tmp_path, "README.md", "see [missing](nope.md)\n")
        errors = checker.check_file(doc, tmp_path)
        assert len(errors) == 1
        assert "broken link" in errors[0]
        assert "nope.md" in errors[0]

    def test_resolving_link_and_externals_pass(self, checker, tmp_path):
        self._write(tmp_path, "docs/page.md", "# Page\n\n## A Section\n")
        doc = self._write(
            tmp_path,
            "README.md",
            "[ok](docs/page.md) [anchor](docs/page.md#a-section) "
            "[web](https://example.com) [frag](#local)\n",
        )
        assert checker.check_file(doc, tmp_path) == []

    def test_missing_anchor_is_reported(self, checker, tmp_path):
        self._write(tmp_path, "docs/page.md", "# Page\n")
        doc = self._write(tmp_path, "README.md", "[x](docs/page.md#absent)\n")
        errors = checker.check_file(doc, tmp_path)
        assert len(errors) == 1
        assert "missing anchor" in errors[0]

    def test_links_inside_code_fences_are_ignored(self, checker, tmp_path):
        doc = self._write(
            tmp_path,
            "README.md",
            "```\n[not a link](ghost.md)\n```\n",
        )
        assert checker.check_file(doc, tmp_path) == []

    def test_link_escaping_the_repo_is_reported(self, checker, tmp_path):
        doc = self._write(tmp_path, "README.md", "[up](../outside.md)\n")
        errors = checker.check_file(doc, tmp_path)
        assert len(errors) == 1
        assert "escapes repo" in errors[0]

    def test_main_exit_status_reflects_breakage(self, checker, tmp_path, capsys):
        self._write(tmp_path, "README.md", "[bad](gone.md)\n")
        assert checker.main([str(tmp_path)]) == 1
        captured = capsys.readouterr()
        assert "gone.md" in captured.err
        assert "1 broken links" in captured.out


if __name__ == "__main__":
    sys.exit(pytest.main([__file__, "-q"]))
