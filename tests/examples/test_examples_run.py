"""Smoke tests: the example scripts run to completion and print their reports."""

import os
import runpy

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "paper_figures_walkthrough.py",
    "failure_recovery_demo.py",
    "campaign_quickstart.py",
    "fault_model_study.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script, capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, script))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script} produced no output"


def test_quickstart_reports_safety(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "quickstart.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    squeezed = output.replace("  ", " ")
    assert "safe (Theorem 4) in every audit True" in squeezed or "True" in output
    assert "recovery at" in output


def test_campaign_quickstart_demonstrates_resume(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "campaign_quickstart.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    assert "8 executed, 0 resumed" in output
    assert "0 executed, 8 resumed" in output


def test_fault_model_study_covers_every_regime(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "fault_model_study.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    for regime in (
        "network=lat=1.0/jit=0.5/drop=0.0",
        "network=ch=gilbert-elliott",
        "network=ch=duplicating",
        "part[20,40)g0,1",
        "churn(hazard_rate=0.03)",
    ):
        assert regime in output
    assert "duplicated" in output and "partition_blocked" in output


def test_figures_walkthrough_mentions_every_figure(capsys):
    path = os.path.abspath(os.path.join(EXAMPLES_DIR, "paper_figures_walkthrough.py"))
    runpy.run_path(path, run_name="__main__")
    output = capsys.readouterr().out
    for figure in ("Figure 1", "Figure 2", "Figure 3", "Figure 4", "Figure 5"):
        assert figure in output
