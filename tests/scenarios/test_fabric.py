"""Tests for the distributed campaign fabric: racing workers, SIGKILL, resume.

These are the acceptance properties of the claim/lease work-queue: two
executor processes racing on the same store never double-run a cell, a
worker killed mid-lease leaves a reclaimable cell whose re-run produces a
byte-identical result row, and a warm re-run of a completed sweep
short-circuits without touching the store.
"""

import json
import multiprocessing
import os
import signal
import time
from collections import Counter

import pytest

import repro.scenarios.campaign.executor as executor_module
from repro.scenarios.campaign import (
    CampaignSpec,
    CollectorSpec,
    SQLResultStore,
    WorkloadSpec,
    aggregate_campaign,
    run_campaign,
    run_worker,
    spec_from_mapping,
)
from repro.scenarios.campaign.executor import execute_cell

#: One small grid, used by every test here so serial references are cheap.
SPEC_DOCUMENT = {
    "name": "fabric",
    "num_processes": 3,
    "duration": 15.0,
    "collectors": ["rdt-lgc", "none"],
    "workloads": ["uniform-random"],
    "failure_counts": [0, 1],
    "seeds": 2,
}


def fabric_spec() -> CampaignSpec:
    return spec_from_mapping(SPEC_DOCUMENT)


def _worker_process(store_path: str, worker_name: str) -> None:
    """Subprocess entry: drain the shared queue as one fabric worker."""
    run_worker(
        fabric_spec(),
        store_path,
        worker=worker_name,
        wait=True,
        poll_interval=0.05,
    )


def _claim_then_die(store_path: str) -> None:
    """Subprocess entry: lease one cell, then die without completing it."""
    store = SQLResultStore(store_path)
    store.enqueue(fabric_spec().cells())
    store.claim(worker="victim", limit=1, lease_duration=60.0)
    os.kill(os.getpid(), signal.SIGKILL)


class TestRacingWorkers:
    def test_two_processes_never_double_run_a_cell(self, tmp_path):
        spec = fabric_spec()
        store_path = str(tmp_path / "shared.sqlite")
        workers = [
            multiprocessing.Process(
                target=_worker_process, args=(store_path, f"racer-{i}")
            )
            for i in range(2)
        ]
        for process in workers:
            process.start()
        for process in workers:
            process.join(timeout=300)
            assert process.exitcode == 0
        store = SQLResultStore(store_path)
        assert store.status_counts() == {"ok": spec.cell_count}
        # The lease journal is the ground truth of who executed what: a
        # double-run would surface as two 'ok' leases on one cell.
        ok_leases = Counter(
            entry["cell_id"]
            for entry in store.lease_history()
            if entry["outcome"] == "ok"
        )
        assert set(ok_leases.values()) == {1}
        assert len(ok_leases) == spec.cell_count
        # And the result set is exactly the serial reference, byte for byte.
        serial = run_campaign(spec)
        assert (
            aggregate_campaign(store.records(include_incomplete=False)).to_csv()
            == aggregate_campaign(serial.records).to_csv()
        )


class TestCrashRecovery:
    def test_sigkill_mid_lease_leaves_reclaimable_cell(self, tmp_path):
        spec = fabric_spec()
        store_path = str(tmp_path / "crashed.sqlite")
        victim = multiprocessing.Process(target=_claim_then_die, args=(store_path,))
        victim.start()
        victim.join(timeout=60)
        assert victim.exitcode == -signal.SIGKILL
        store = SQLResultStore(store_path)
        counts = store.status_counts()
        assert counts["leased"] == 1
        # The lease is live, so the cell is NOT claimable yet...
        now = time.time()
        assert store.remaining(now=now)[0] == spec.cell_count - 1
        # ...but once it expires it is, with a bumped attempt counter.
        later = now + 120.0
        assert store.remaining(now=later) == (spec.cell_count, 0)
        [reclaimed] = store.claim(worker="survivor", limit=1, now=later)
        assert reclaimed.attempt == 2

        # The re-run's result row is byte-identical to a clean serial run's:
        # cell identity and seeds derive from the parameters, not the worker.
        cells = spec.cells()
        record = execute_cell(cells[reclaimed.cell_index])
        assert store.complete(record, worker="survivor", attempt=reclaimed.attempt)
        reference = execute_cell(cells[reclaimed.cell_index])
        assert json.dumps(record, sort_keys=True) == json.dumps(
            reference, sort_keys=True
        )

    def test_worker_resumes_after_kill_without_rerunning_completed(self, tmp_path):
        spec = fabric_spec()
        store_path = str(tmp_path / "resume.sqlite")
        store = SQLResultStore(store_path)
        store.enqueue(spec.cells())
        # First "incarnation": completes two cells, then (simulated) dies
        # with a third mid-lease.
        cells = spec.cells()
        for claim in store.claim(worker="first", limit=2):
            store.complete(
                execute_cell(cells[claim.cell_index]),
                worker="first",
                attempt=claim.attempt,
            )
        store.claim(worker="first", limit=1, lease_duration=0.0)
        # The relaunched worker drains everything else exactly once.
        result = run_worker(spec, store_path, worker="second")
        assert result.executed == spec.cell_count - 2
        assert result.drained
        store = SQLResultStore(store_path)
        assert store.status_counts() == {"ok": spec.cell_count}
        completions = Counter(
            entry["cell_id"]
            for entry in store.lease_history()
            if entry["outcome"] == "ok"
        )
        assert set(completions.values()) == {1}


class TestShortCircuit:
    def test_completed_sweep_short_circuits(self, tmp_path, monkeypatch):
        spec = fabric_spec()
        store_path = str(tmp_path / "warm.sqlite")
        first = run_campaign(spec, store_path=store_path, workers=2)
        assert first.executed == spec.cell_count

        def _no_pool(*args, **kwargs):  # pragma: no cover - failing is the point
            raise AssertionError("short-circuit must not create a pool")

        monkeypatch.setattr(executor_module.multiprocessing, "Pool", _no_pool)
        before = os.stat(store_path).st_mtime_ns, os.path.getsize(store_path)
        warm = run_campaign(spec, store_path=store_path, workers=4)
        after = os.stat(store_path).st_mtime_ns, os.path.getsize(store_path)
        assert warm.executed == 0
        assert warm.skipped == spec.cell_count
        assert warm.resumed == spec.cell_count
        assert before == after, "a warm re-run must not write to the store"
        # The read-back records still aggregate to the original bytes.
        assert (
            aggregate_campaign(warm.records).to_csv()
            == aggregate_campaign(first.records).to_csv()
        )

    def test_short_circuit_does_not_create_trace_dir(self, tmp_path):
        spec = fabric_spec()
        store_path = str(tmp_path / "warm2.sqlite")
        run_campaign(spec, store_path=store_path)
        trace_dir = tmp_path / "traces-of-warm-run"
        warm = run_campaign(spec, store_path=store_path, trace_dir=str(trace_dir))
        assert warm.executed == 0
        assert not trace_dir.exists()

    def test_sharded_stores_reduce_to_serial_reference(self, tmp_path):
        spec = fabric_spec()
        for shard in range(2):
            result = run_worker(
                spec,
                str(tmp_path / f"shard{shard}.sqlite"),
                worker=f"shard-{shard}",
                shard=(shard, 2),
            )
            assert result.drained
        merged = SQLResultStore(str(tmp_path / "merged.sqlite"))
        merged.merge_from(str(tmp_path / "shard0.sqlite"))
        merged.merge_from(str(tmp_path / "shard1.sqlite"))
        serial = run_campaign(spec)
        assert (
            aggregate_campaign(merged.records(include_incomplete=False)).to_json()
            == aggregate_campaign(serial.records).to_json()
        )


class TestWorkerLoop:
    def test_worker_rejects_jsonl_store(self, tmp_path):
        with pytest.raises(ValueError, match="SQL result store"):
            run_worker(fabric_spec(), str(tmp_path / "queue.jsonl"))

    def test_worker_rejects_foreign_store(self, tmp_path):
        store_path = str(tmp_path / "foreign.sqlite")
        run_campaign(fabric_spec(), store_path=store_path)
        other = CampaignSpec(
            name="other",
            num_processes=3,
            duration=10.0,
            collectors=(CollectorSpec.of("none"),),
            workloads=(WorkloadSpec.of("ring"),),
            seeds=(0,),
        )
        store = SQLResultStore(store_path)
        store.enqueue(other.cells())
        with pytest.raises(ValueError, match="one store per campaign"):
            run_worker(fabric_spec(), store_path)

    def test_max_cells_bounds_one_incarnation(self, tmp_path):
        spec = fabric_spec()
        result = run_worker(
            spec, str(tmp_path / "budget.sqlite"), worker="budgeted", max_cells=3
        )
        assert result.executed == 3
        counts = SQLResultStore(str(tmp_path / "budget.sqlite")).status_counts()
        assert counts == {"ok": 3, "pending": spec.cell_count - 3}
