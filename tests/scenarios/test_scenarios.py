"""Tests for the scenario builders shared by tests, examples and benchmarks."""


from repro.ccp.rdt import check_rdt
from repro.core.rdt_lgc import RdtLgc
from repro.scenarios.experiments import (
    random_run_config,
    run_random_simulation,
    run_worst_case,
)
from repro.scenarios.figures import (
    FIGURE4_ANNOTATIONS,
    drive_figure4,
    figure1_ccp,
    figure2_ccp,
    figure3_ccp,
    figure4_ccp,
)


class TestFigureBuilders:
    def test_figure1_shapes(self):
        ccp = figure1_ccp()
        assert ccp.num_processes == 3
        assert len(ccp.messages()) == 5
        assert check_rdt(ccp).is_rdt

    def test_figure1_without_m3_has_four_messages(self):
        assert len(figure1_ccp(include_m3=False).messages()) == 4

    def test_figure2_shapes(self):
        ccp = figure2_ccp()
        assert ccp.num_processes == 2
        assert ccp.last_stable(0) == 2 and ccp.last_stable(1) == 1

    def test_figure3_shapes(self):
        ccp = figure3_ccp()
        assert ccp.num_processes == 4
        assert check_rdt(ccp).is_rdt

    def test_figure4_ccp_matches_the_driven_execution(self):
        gcs = [RdtLgc(pid, 3) for pid in range(3)]
        drive_figure4(gcs)
        ccp = figure4_ccp()
        for pid, gc in enumerate(gcs):
            assert ccp.dv(ccp.volatile_id(pid)) == gc.dependency_vector

    def test_figure4_annotation_labels_match_the_steps(self):
        gcs = [RdtLgc(pid, 3) for pid in range(3)]
        steps = drive_figure4(gcs)
        assert {label for label, _, _ in steps} == set(FIGURE4_ANNOTATIONS)


class TestExperimentBuilders:
    def test_random_run_config_fields(self):
        config = random_run_config(num_processes=3, duration=10.0, crashes=1, seed=4)
        assert config.num_processes == 3
        assert len(config.failures) == 1
        assert config.keep_final_ccp

    def test_run_random_simulation_executes(self):
        result = run_random_simulation(num_processes=2, duration=20.0, seed=1)
        assert result.total_checkpoints >= 2

    def test_run_worst_case_reaches_the_bound(self):
        result = run_worst_case(3)
        assert result.retained_final == (3, 3, 3)

    def test_explicit_workload_overrides_random_one(self):
        from repro.simulation.workloads import RingWorkload

        config = random_run_config(workload=RingWorkload(), duration=10.0)
        assert isinstance(config.workload, RingWorkload)
