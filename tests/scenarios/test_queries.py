"""Tests for the canned query library over the SQL result store."""

import json

import pytest

from repro.scenarios.campaign import (
    SQLResultStore,
    aggregate_campaign,
    describe_queries,
    run_campaign,
    run_query,
    spec_from_mapping,
    store_summary,
)

SPEC_DOCUMENT = {
    "name": "queries",
    "num_processes": 3,
    "duration": 15.0,
    "collectors": ["rdt-lgc", "none"],
    "workloads": ["uniform-random"],
    "failure_counts": [0, 1],
    "seeds": 2,
}


@pytest.fixture(scope="module")
def populated(tmp_path_factory):
    """One executed sweep in a SQL store, shared by every test here."""
    path = str(tmp_path_factory.mktemp("queries") / "sweep.sqlite")
    spec = spec_from_mapping(SPEC_DOCUMENT)
    run = run_campaign(spec, store_path=path)
    return path, run


class TestCannedQueries:
    def test_library_is_described(self):
        names = [name for name, _, _ in describe_queries()]
        assert "retained-winner" in names
        assert "collector-table" in names
        assert "churn-sensitivity" in names
        assert "live-vs-sim" in names

    def test_retained_winner_answers_the_papers_question(self, populated):
        path, run = populated
        rows = run_query(path, "retained-winner")
        # One winner per fault regime: protocol x workload x failures x network.
        regimes = {(r["protocol"], r["workload"], r["failures"], r["network"]) for r in rows}
        assert len(rows) == len(regimes) == 2  # failures=0 and failures=1
        assert all(r["rank"] == 1 for r in rows)
        # rdt-lgc retains strictly less than the no-collection baseline.
        assert {r["collector"] for r in rows} == {"rdt-lgc"}

    def test_collector_table_covers_every_group(self, populated):
        path, _ = populated
        rows = run_query(path, "collector-table")
        assert len(rows) == 4  # 2 collectors x 2 failure levels
        for row in rows:
            assert row["min_value"] <= row["mean_value"] <= row["max_value"]
            assert row["runs"] == 2

    def test_metric_parameter_is_honoured(self, populated):
        path, _ = populated
        by_peak = run_query(path, "collector-table", metric="peak_retained")
        by_final = run_query(path, "collector-table", metric="final_retained")
        assert by_peak != by_final

    def test_unknown_parameter_names_accepted_ones(self, populated):
        path, _ = populated
        with pytest.raises(ValueError, match="metric"):
            run_query(path, "retained-winner", metrik="peak_retained")

    def test_unknown_query_rejected(self, populated):
        path, _ = populated
        with pytest.raises(KeyError, match="retained-winner"):
            run_query(path, "no-such-query")

    def test_views_exist_in_schema(self, populated):
        path, _ = populated
        with SQLResultStore(path).connect() as connection:
            views = {
                row["name"]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'view'"
                )
            }
        assert {"v_collector_score", "v_retained_winner", "v_churn_sensitivity",
                "v_live_vs_sim"} <= views


class TestStoreSummary:
    def test_reducer_is_byte_identical_to_in_memory_aggregate(self, populated):
        path, run = populated
        summary = store_summary(path)
        reference = aggregate_campaign(run.records)
        assert summary.to_csv() == reference.to_csv()
        assert summary.to_json() == reference.to_json()

    def test_group_by_is_forwarded(self, populated):
        path, run = populated
        summary = store_summary(path, group_by=("collector",))
        reference = aggregate_campaign(run.records, group_by=("collector",))
        assert summary.to_json() == reference.to_json()

    def test_incomplete_store_is_refused_unless_allowed(self, tmp_path):
        path = str(tmp_path / "partial.sqlite")
        spec = spec_from_mapping(SPEC_DOCUMENT)
        store = SQLResultStore(path)
        store.enqueue(spec.cells())
        from repro.scenarios.campaign.executor import execute_cell

        cells = spec.cells()
        [claim] = store.claim(worker="w", limit=1)
        store.complete(
            execute_cell(cells[claim.cell_index]), worker="w", attempt=claim.attempt
        )
        with pytest.raises(ValueError, match="incomplete"):
            store_summary(path)
        partial = store_summary(path, allow_incomplete=True)
        assert json.loads(partial.to_json())["campaign"] == "queries"
