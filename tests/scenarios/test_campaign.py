"""Tests for the campaign subsystem: expansion, seeding, store, pool, aggregation."""

import json
import statistics

import pytest

import repro.scenarios.campaign.executor as executor_module
from repro.scenarios.campaign import (
    CampaignSpec,
    CampaignStore,
    CollectorSpec,
    WorkloadSpec,
    aggregate_campaign,
    run_campaign,
    spec_from_mapping,
)
from repro.scenarios.campaign.cli import main as campaign_main
from repro.membership import MembershipSpec
from repro.scenarios.experiments import (
    fault_model_campaign_spec,
    hierarchical_network_config,
    membership_churn_smoke_spec,
    paper_campaign_spec,
    smoke_campaign_spec,
    topology_campaign_spec,
)
from repro.simulation.channels import (
    GilbertElliottChannel,
    PartitionSchedule,
)
from repro.simulation.failures import FailureModelSpec
from repro.simulation.network import NetworkConfig


def tiny_spec(*, seeds=(0, 1), failure_counts=(0,), name="tiny"):
    """A seconds-fast grid: 2 collectors x 1 workload x the given seeds."""
    return CampaignSpec(
        name=name,
        num_processes=3,
        duration=25.0,
        collectors=(
            CollectorSpec.of("rdt-lgc"),
            CollectorSpec.of("none"),
        ),
        workloads=(WorkloadSpec.of("uniform-random"),),
        failure_counts=failure_counts,
        seeds=seeds,
    )


class TestSpecExpansion:
    def test_cell_count_matches_expansion(self):
        spec = tiny_spec()
        assert spec.cell_count == 4
        assert len(spec.cells()) == 4

    def test_paper_grid_shape(self):
        spec = paper_campaign_spec()
        # 5 collectors x 4 workloads x 2 failure levels x 10 seeds
        assert spec.cell_count == 5 * 4 * 2 * 10

    def test_unknown_names_rejected_eagerly(self):
        with pytest.raises(KeyError):
            CollectorSpec.of("no-such-collector")
        with pytest.raises(KeyError):
            WorkloadSpec.of("no-such-workload")
        with pytest.raises(KeyError):
            CampaignSpec(name="x", protocols=("no-such-protocol",))

    def test_bad_options_rejected_eagerly(self):
        # A typo'd option must fail at spec-build time, not surface as
        # per-cell "failed" records halfway through a sweep.
        with pytest.raises(TypeError):
            WorkloadSpec.of("ring", {"perod": 2.0})
        with pytest.raises(TypeError):
            CollectorSpec.of("wang-coordinated", {"periot": 20.0})
        with pytest.raises(ValueError, match="must be a scalar"):
            CollectorSpec.of("rdt-lgc", {"p": [1, 2]})

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="x", seeds=())
        with pytest.raises(ValueError):
            CampaignSpec(name="x", collectors=())

    def test_negative_failure_counts_rejected(self):
        with pytest.raises(ValueError):
            CampaignSpec(name="x", failure_counts=(-1,))

    def test_duplicate_axis_entries_rejected(self):
        # Duplicates would expand to identical cells (same cell_id), execute
        # twice and double-count in aggregation.
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(name="x", seeds=(0, 0))
        with pytest.raises(ValueError, match="duplicate"):
            CampaignSpec(
                name="x",
                collectors=(CollectorSpec.of("rdt-lgc"), CollectorSpec.of("rdt-lgc")),
            )

    def test_unknown_mapping_keys_rejected(self):
        with pytest.raises(ValueError, match="failure_count"):
            spec_from_mapping({"name": "x", "failure_count": [0, 2]})

    def test_bare_string_axes_rejected(self):
        # tuple("fdas") would expand per character into ('f','d','a','s').
        with pytest.raises(ValueError, match="must be a list"):
            spec_from_mapping({"name": "x", "protocols": "fdas"})
        with pytest.raises(ValueError, match="must be a list"):
            spec_from_mapping({"name": "x", "collectors": "rdt-lgc"})

    def test_spec_from_mapping(self):
        spec = spec_from_mapping(
            {
                "name": "mapped",
                "num_processes": 3,
                "duration": 30.0,
                "collectors": [
                    "rdt-lgc",
                    {"name": "wang-coordinated", "options": {"period": 10.0}},
                ],
                "workloads": [{"name": "ring", "params": {"period": 2.0}}],
                "failure_counts": [0, 1],
                "seeds": 3,
            }
        )
        assert spec.cell_count == 2 * 1 * 2 * 3
        assert spec.collectors[1].options_dict() == {"period": 10.0}
        assert spec.workloads[0].build().name == "ring"


class TestCellIdentity:
    def test_cell_id_independent_of_grid_position(self):
        forward = {c.cell_id: c for c in tiny_spec().cells()}
        spec_reversed = CampaignSpec(
            name="tiny",
            num_processes=3,
            duration=25.0,
            collectors=(CollectorSpec.of("none"), CollectorSpec.of("rdt-lgc")),
            workloads=(WorkloadSpec.of("uniform-random"),),
            failure_counts=(0,),
            seeds=(1, 0),
        )
        backward = {c.cell_id: c for c in spec_reversed.cells()}
        assert set(forward) == set(backward)
        for cell_id, cell in forward.items():
            assert backward[cell_id].seed == cell.seed

    def test_any_parameter_changes_the_identity(self):
        base = tiny_spec().cells()[0]
        sibling = tiny_spec(name="other").cells()[0]
        assert base.cell_id != sibling.cell_id
        assert base.seed != sibling.seed

    def test_cells_have_distinct_seeds(self):
        cells = paper_campaign_spec(num_seeds=5).cells()
        assert len({c.seed for c in cells}) == len(cells)

    def test_failure_schedule_is_reproducible_and_in_bounds(self):
        cell = tiny_spec(failure_counts=(2,)).cells()[0]
        first = cell.failure_schedule()
        second = cell.failure_schedule()
        assert first == second
        assert len(first) == 2
        for crash in first:
            assert crash.time < cell.duration

    def test_config_materialisation(self):
        cell = tiny_spec(failure_counts=(1,)).cells()[0]
        config = cell.config()
        assert config.num_processes == 3
        assert config.collector == cell.collector
        assert config.seed == cell.seed
        assert len(config.failures) == 1


class TestBackendAxis:
    """Execution backends are a grid axis; `sim` cells keep their identity."""

    def test_backends_axis_expands_and_materialises(self):
        spec = CampaignSpec(
            name="both-backends",
            num_processes=3,
            duration=25.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
            backends=("sim", "live"),
        )
        assert spec.cell_count == 2
        sim_cell, live_cell = spec.cells()
        assert sim_cell.backend == "sim"
        assert live_cell.backend == "live"
        assert live_cell.config().backend == "live"

    def test_sim_cells_keep_their_pre_backend_identity(self):
        """`backend` hashes into the cell_id only when non-default, so every
        pre-existing sim study keeps its cell ids (and therefore seeds)."""
        spec = CampaignSpec(
            name="both-backends",
            num_processes=3,
            duration=25.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
            backends=("sim", "live"),
        )
        sim_cell, live_cell = spec.cells()
        assert "backend" not in sim_cell.params()
        assert live_cell.params()["backend"] == "live"
        assert sim_cell.cell_id != live_cell.cell_id
        # The stable part: a sim-only spec and the sim half of a mixed spec
        # produce the same id for the same parameters.
        sim_only = CampaignSpec(
            name="both-backends",
            num_processes=3,
            duration=25.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
        ).cells()[0]
        assert sim_cell.cell_id == sim_only.cell_id

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backends"):
            CampaignSpec(name="x", backends=("sim", "emulated"))

    def test_backends_from_mapping(self):
        spec = spec_from_mapping(
            {"name": "x", "collectors": ["rdt-lgc"], "backends": ["sim", "live"]}
        )
        assert spec.backends == ("sim", "live")
        with pytest.raises(ValueError, match="must be a list"):
            spec_from_mapping({"name": "x", "backends": "live"})


class TestMembershipAxis:
    """Membership schedules are a grid axis; static cells keep their identity."""

    def _mixed_spec(self):
        return CampaignSpec(
            name="churny",
            num_processes=4,
            duration=40.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
            memberships=(
                MembershipSpec.static(),
                MembershipSpec.of(joins=[(10.0, 3)], leaves=[(25.0, 1)]),
            ),
        )

    def test_memberships_axis_expands_and_materialises(self):
        spec = self._mixed_spec()
        assert spec.cell_count == 2
        static_cell, dynamic_cell = spec.cells()
        assert static_cell.membership.is_static()
        assert not dynamic_cell.membership.is_static()
        config = dynamic_cell.config()
        assert len(config.membership.joins) == 1
        assert len(config.membership.leaves) == 1

    def test_static_cells_keep_their_pre_membership_identity(self):
        static_cell, dynamic_cell = self._mixed_spec().cells()
        assert "membership" not in static_cell.params()
        assert dynamic_cell.params()["membership"] == (
            "membership(join=3@10.0,leave=1@25.0)"
        )
        assert static_cell.cell_id != dynamic_cell.cell_id
        static_only = CampaignSpec(
            name="churny",
            num_processes=4,
            duration=40.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
        ).cells()[0]
        assert static_cell.cell_id == static_only.cell_id

    def test_schedule_outside_grid_shape_rejected(self):
        with pytest.raises(ValueError, match="outside the campaign duration"):
            CampaignSpec(
                name="x",
                num_processes=4,
                duration=40.0,
                memberships=(MembershipSpec.of(leaves=[(50.0, 1)]),),
            )
        with pytest.raises(Exception, match="only 2 processes"):
            CampaignSpec(
                name="x",
                num_processes=2,
                memberships=(MembershipSpec.of(joins=[(10.0, 5)]),),
            )

    def test_dynamic_membership_with_live_backend_rejected(self):
        with pytest.raises(ValueError, match="'sim' backend only"):
            CampaignSpec(
                name="x",
                num_processes=4,
                duration=40.0,
                backends=("sim", "live"),
                memberships=(MembershipSpec.of(leaves=[(20.0, 1)]),),
            )

    def test_memberships_from_mapping(self):
        spec = spec_from_mapping(
            {
                "name": "x",
                "num_processes": 4,
                "duration": 40.0,
                "collectors": ["rdt-lgc"],
                "memberships": [
                    "static",
                    {"joins": [[10.0, 3]], "leaves": [[25.0, 1]]},
                ],
            }
        )
        assert spec.memberships[0].is_static()
        assert spec.memberships[1].joins == ((10.0, 3),)
        with pytest.raises(ValueError, match="must be a list"):
            spec_from_mapping({"name": "x", "memberships": "static"})
        with pytest.raises(ValueError, match="unknown membership keys"):
            spec_from_mapping(
                {"name": "x", "memberships": [{"join": [[1.0, 0]]}]}
            )

    def test_membership_churn_cell_executes_end_to_end(self, tmp_path):
        """The acceptance path: a campaign cell with a join and a leave runs,
        writes a replay-verified trace, and the departed pid retains nothing."""
        from repro.traceio.reader import TraceReader, verify_trace

        spec = CampaignSpec(
            name="churn-accept",
            num_processes=4,
            duration=40.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
            seeds=(0,),
            memberships=(MembershipSpec.of(joins=[(10.0, 3)], leaves=[(25.0, 1)]),),
        )
        run = run_campaign(spec, trace_dir=str(tmp_path))
        assert run.executed == 1 and not run.failed_records
        trace_path = tmp_path / f"{spec.cells()[0].cell_id}.trace.jsonl"
        assert trace_path.exists()
        assert verify_trace(str(trace_path)) == []
        replayed = TraceReader(str(trace_path)).replay()
        assert replayed.recorder.departed == frozenset({1})
        assert replayed.recorder.membership.members == frozenset({0, 2, 3})

    def test_topology_and_smoke_specs_expand(self):
        assert topology_campaign_spec(num_seeds=1).cell_count > 0
        smoke = membership_churn_smoke_spec(num_seeds=1)
        assert all(not m.is_static() for m in smoke.memberships)
        network = hierarchical_network_config(num_processes=6, duration=60.0)
        network.validate_for(6)
        with pytest.raises(ValueError):
            network.validate_for(7)


class TestFaultModelAxes:
    """Fault models are first-class grid axes, hashed into cell identities."""

    def test_default_cell_params_keep_their_pre_fault_model_shape(self):
        """The network params of a default cell must stay exactly the three
        scalar keys — anything else silently re-identifies (and re-seeds)
        every existing study."""
        cell = tiny_spec().cells()[0]
        assert cell.params()["network"] == {
            "base_latency": 1.0,
            "jitter": 0.5,
            "drop_probability": 0.0,
        }
        assert cell.params()["failures"] == 0

    def test_fault_models_change_the_cell_identity(self):
        def with_network(network):
            return CampaignSpec(
                name="fault-id",
                num_processes=3,
                duration=25.0,
                collectors=(CollectorSpec.of("rdt-lgc"),),
                workloads=(WorkloadSpec.of("uniform-random"),),
                networks=(network,),
            ).cells()[0]

        base = with_network(NetworkConfig())
        bursty = with_network(NetworkConfig(channel=GilbertElliottChannel()))
        fifo = with_network(NetworkConfig(fifo=True))
        split = with_network(
            NetworkConfig(partitions=PartitionSchedule.of([(5.0, 10.0, ((0,),))]))
        )
        ids = {c.cell_id for c in (base, bursty, fifo, split)}
        assert len(ids) == 4
        seeds = {c.seed for c in (base, bursty, fifo, split)}
        assert len(seeds) == 4

    def test_churn_axis_entry_materialises_and_is_identity_bearing(self):
        spec = CampaignSpec(
            name="churny",
            num_processes=3,
            duration=60.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
            failure_counts=(0, FailureModelSpec.of("churn", {"hazard_rate": 0.1})),
        )
        calm, churny = spec.cells()
        assert calm.cell_id != churny.cell_id
        assert churny.params()["failures"] == "churn(hazard_rate=0.1)"
        schedule = churny.failure_schedule()
        assert len(schedule) > 0
        assert churny.failure_schedule() == schedule  # derived, reproducible

    def test_mixed_failure_axis_rejects_bad_entries(self):
        with pytest.raises(ValueError):
            CampaignSpec(
                name="bad",
                collectors=(CollectorSpec.of("rdt-lgc"),),
                workloads=(WorkloadSpec.of("uniform-random"),),
                failure_counts=("churn",),  # type: ignore[arg-type]
            )

    def test_spec_from_mapping_parses_fault_models(self):
        spec = spec_from_mapping(
            {
                "name": "json-faults",
                "num_processes": 3,
                "duration": 30.0,
                "collectors": ["rdt-lgc"],
                "workloads": ["uniform-random"],
                "networks": [
                    {},
                    {"channel": {"kind": "gilbert-elliott", "loss_bad": 0.7}},
                    {
                        "partitions": [
                            {"start": 5.0, "end": 15.0, "groups": [[0, 1]]}
                        ],
                        "fifo": True,
                    },
                ],
                "failure_counts": [0, {"model": "churn", "hazard_rate": 0.05}],
                "seeds": 2,
            }
        )
        assert spec.cell_count == 1 * 1 * 3 * 2 * 2
        kinds = {
            (network.channel.kind if network.channel else "uniform")
            for network in spec.networks
        }
        assert kinds == {"uniform", "gilbert-elliott"}
        assert any(network.fifo for network in spec.networks)
        assert any(network.partitions for network in spec.networks)
        assert any(
            isinstance(entry, FailureModelSpec) for entry in spec.failure_counts
        )

    def test_spec_from_mapping_rejects_model_without_name(self):
        with pytest.raises(ValueError):
            spec_from_mapping(
                {
                    "name": "bad",
                    "failure_counts": [{"hazard_rate": 0.05}],
                }
            )

    def test_same_channel_different_severity_never_pools(self):
        """Two parameterizations of one channel model must aggregate into
        distinct groups — a severity comparison silently averaged into one
        row is a corrupted study."""
        spec = CampaignSpec(
            name="severities",
            num_processes=3,
            duration=25.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
            networks=(
                NetworkConfig(channel=GilbertElliottChannel(loss_bad=0.1)),
                NetworkConfig(channel=GilbertElliottChannel(loss_bad=0.9)),
            ),
        )
        run = run_campaign(spec)
        summary = aggregate_campaign(run.records, group_by=("network",))
        assert {group.key[0] for group in summary.groups} == {
            "ch=gilbert-elliott(loss_bad=0.1)",
            "ch=gilbert-elliott(loss_bad=0.9)",
        }

    def test_fault_model_sweep_executes_and_groups_per_regime(self):
        spec = fault_model_campaign_spec(
            num_processes=3,
            duration=30.0,
            num_seeds=1,
            collectors=(("rdt-lgc", {}),),
        )
        run = run_campaign(spec)
        assert run.cell_count == spec.cell_count
        summary = aggregate_campaign(
            run.records, group_by=("network", "failures")
        )
        regimes = {group.key[0] for group in summary.groups}
        assert "ch=gilbert-elliott(loss_bad=0.4,p_bad_to_good=0.3)" in regimes
        assert "ch=duplicating(duplicate_probability=0.2)" in regimes
        assert any(r.startswith("ch=latency-matrix(latencies#") for r in regimes)
        assert "lat=1.0/jit=0.5/drop=0.0/part[10,20)g0,1" in regimes
        assert "lat=1.0/jit=0.5/drop=0.0/fifo" in regimes
        # The adversaries' pressure is measured per cell.
        metrics = [
            r["metrics"] for r in run.records if r.get("status") == "ok"
        ]
        assert any(m["duplicated"] > 0 for m in metrics)
        assert any(m["partition_blocked"] > 0 for m in metrics)


class TestStore:
    def test_append_load_roundtrip(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s.jsonl"))
        store.append({"cell_id": "a", "params": {}, "metrics": {"x": 1.5}})
        store.append({"cell_id": "b", "params": {}, "metrics": {"x": 2.0}})
        loaded = store.load()
        assert set(loaded) == {"a", "b"}
        assert loaded["a"]["metrics"]["x"] == 1.5

    def test_half_written_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = CampaignStore(str(path))
        store.append({"cell_id": "a", "metrics": {}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"cell_id": "b", "metr')  # killed mid-write
        assert set(store.load()) == {"a"}

    def test_append_after_half_written_line_repairs_the_tail(self, tmp_path):
        # A kill mid-write leaves a partial final line; appending must not
        # glue the new record onto it (which would lose the record and turn
        # the partial line into interior corruption on the next append).
        path = tmp_path / "s.jsonl"
        store = CampaignStore(str(path))
        store.append({"cell_id": "a", "metrics": {}})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"cell_id": "b", "metr')  # killed mid-write
        store.append({"cell_id": "b", "metrics": {"x": 1.0}})
        store.append({"cell_id": "c", "metrics": {}})
        loaded = store.load()  # must not raise: the partial line is gone
        assert set(loaded) == {"a", "b", "c"}
        assert loaded["b"]["metrics"]["x"] == 1.0

    def test_append_terminates_a_complete_unterminated_record(self, tmp_path):
        path = tmp_path / "s.jsonl"
        store = CampaignStore(str(path))
        with open(path, "w", encoding="utf-8") as handle:
            handle.write('{"cell_id": "a", "metrics": {}}')  # no newline
        store.append({"cell_id": "b", "metrics": {}})
        assert set(store.load()) == {"a", "b"}

    def test_corrupt_interior_line_raises(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json\n")
            handle.write(json.dumps({"cell_id": "a"}) + "\n")
        with pytest.raises(ValueError):
            CampaignStore(str(path)).load()

    def test_non_record_json_line_raises_value_error(self, tmp_path):
        path = tmp_path / "s.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("42\n")
        with pytest.raises(ValueError, match="not a cell record"):
            CampaignStore(str(path)).load()

    def test_later_record_wins(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s.jsonl"))
        store.append({"cell_id": "a", "metrics": {"x": 1.0}})
        store.append({"cell_id": "a", "metrics": {"x": 9.0}})
        assert store.load()["a"]["metrics"]["x"] == 9.0

    def test_records_without_cell_id_rejected(self, tmp_path):
        store = CampaignStore(str(tmp_path / "s.jsonl"))
        with pytest.raises(ValueError):
            store.append({"metrics": {}})


class TestExecution:
    def test_pool_and_serial_runs_are_identical(self):
        spec = tiny_spec()
        serial = run_campaign(spec, workers=1)
        pooled = run_campaign(spec, workers=3)
        assert serial.executed == pooled.executed == spec.cell_count
        assert serial.records == pooled.records
        assert (
            aggregate_campaign(serial.records).to_csv()
            == aggregate_campaign(pooled.records).to_csv()
        )

    def test_records_follow_expansion_order(self):
        spec = tiny_spec()
        expected = [cell.cell_id for cell in spec.cells()]
        run = run_campaign(spec, workers=2)
        assert [record["cell_id"] for record in run.records] == expected

    def test_progress_reports_every_cell(self):
        spec = tiny_spec(seeds=(0,))
        seen = []
        run_campaign(spec, progress=lambda done, total: seen.append((done, total)))
        assert seen == [(1, 2), (2, 2)]

    def test_resume_after_kill_skips_completed_cells(self, tmp_path, monkeypatch):
        spec = tiny_spec()
        store_path = str(tmp_path / "sweep.jsonl")
        uninterrupted = aggregate_campaign(run_campaign(spec).records)

        real = executor_module.execute_cell
        calls = {"n": 0}

        def dies_after_two(cell):
            if calls["n"] == 2:
                raise KeyboardInterrupt("killed mid-sweep")
            calls["n"] += 1
            return real(cell)

        monkeypatch.setattr(executor_module, "execute_cell", dies_after_two)
        with pytest.raises(KeyboardInterrupt):
            run_campaign(spec, store_path=store_path)
        monkeypatch.setattr(executor_module, "execute_cell", real)
        assert len(CampaignStore(store_path).load()) == 2

        executed = []
        monkeypatch.setattr(
            executor_module,
            "execute_cell",
            lambda cell: executed.append(cell.cell_id) or real(cell),
        )
        resumed = run_campaign(spec, store_path=store_path)
        assert resumed.executed == spec.cell_count - 2
        assert resumed.resumed == 2
        assert len(executed) == spec.cell_count - 2
        # Identical results to the uninterrupted run, and one line per cell.
        assert aggregate_campaign(resumed.records).to_csv() == uninterrupted.to_csv()
        with open(store_path, "r", encoding="utf-8") as handle:
            assert len(handle.readlines()) == spec.cell_count

        final = run_campaign(spec, store_path=store_path)
        assert final.executed == 0
        assert final.resumed == spec.cell_count

    def test_smoke_spec_runs_with_failures(self):
        run = run_campaign(smoke_campaign_spec(num_seeds=1))
        crashed = [
            r for r in run.records if r["params"]["failures"] and r["metrics"]["recoveries"]
        ]
        assert crashed, "failure cells must actually inject crashes"

    def test_failing_cells_are_recorded_not_fatal(self, tmp_path):
        # client-server on a single process raises inside the simulation; the
        # sweep must record the failure and keep going (the paper grid itself
        # contains such points: the unsafe collector breaking recovery).
        spec = CampaignSpec(
            name="partial-failure",
            num_processes=1,
            duration=20.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(
                WorkloadSpec.of("uniform-random"),
                WorkloadSpec.of("client-server"),
            ),
            seeds=(0, 1),
        )
        store_path = str(tmp_path / "partial.jsonl")
        run = run_campaign(spec, store_path=store_path)
        assert run.executed == 4
        failed = run.failed_records
        assert len(failed) == 2
        assert all(r["params"]["workload"] == "client-server" for r in failed)
        assert all("error" in r for r in failed)

        summary = aggregate_campaign(run.records, group_by=("workload",))
        by_workload = {g.key[0]: g for g in summary.groups}
        assert by_workload["uniform-random"].count == 2
        assert by_workload["uniform-random"].failed == 0
        assert by_workload["client-server"].count == 0
        assert by_workload["client-server"].failed == 2
        assert by_workload["client-server"].stats == {}
        rendered = summary.table().render()
        assert "failed" in rendered
        assert "-" in rendered  # metric cells of the all-failed group
        csv_rows = {line.split(",")[0]: line for line in summary.to_csv().splitlines()[1:]}
        assert csv_rows["client-server"].endswith(",0,2")  # 0 runs, 2 failed
        assert csv_rows["uniform-random"].endswith(",2,0")

        # Failed cells are persisted and not re-executed on resume.
        resumed = run_campaign(spec, store_path=store_path)
        assert resumed.executed == 0
        assert resumed.resumed == 4

        # retry_failed re-executes exactly the failed cells (deterministic
        # failures fail again; the escape hatch exists for transient causes).
        retried = run_campaign(spec, store_path=store_path, retry_failed=True)
        assert retried.executed == 2
        assert retried.resumed == 2
        assert len(retried.failed_records) == 2

    def test_all_failed_campaign_rejected_in_aggregation(self):
        spec = CampaignSpec(
            name="all-fail",
            num_processes=1,
            duration=20.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("client-server"),),
            seeds=(0,),
        )
        run = run_campaign(spec)
        with pytest.raises(ValueError):
            aggregate_campaign(run.records)


class TestAggregation:
    def test_single_seed_has_zero_spread(self):
        run = run_campaign(tiny_spec(seeds=(0,)))
        summary = aggregate_campaign(run.records, group_by=("collector",))
        for group in summary.groups:
            assert group.count == 1
            for stats in group.stats.values():
                assert stats.stdev == 0.0
                assert stats.minimum == stats.maximum == stats.mean

    def test_multi_seed_uses_sample_stdev(self):
        run = run_campaign(tiny_spec(seeds=(0, 1, 2)))
        summary = aggregate_campaign(run.records, group_by=("collector",))
        by_collector = {g.key[0]: g for g in summary.groups}
        values = [
            r["metrics"]["peak_retained"]
            for r in run.records
            if r["params"]["collector"] == "rdt-lgc"
        ]
        stats = by_collector["rdt-lgc"].stats["peak_retained"]
        assert stats.count == 3
        assert stats.mean == pytest.approx(statistics.fmean(values))
        assert stats.stdev == pytest.approx(statistics.stdev(values))

    def test_group_by_and_tables(self):
        run = run_campaign(tiny_spec(failure_counts=(0, 1)))
        summary = aggregate_campaign(run.records)
        assert summary.group_by == ("workload", "collector", "failures")
        assert len(summary.groups) == 4  # 2 collectors x 2 failure levels
        text = summary.table().render()
        assert "rdt-lgc" in text and "±" in text
        sections = summary.tables_by("workload")
        assert len(sections) == 1 and sections[0][0] == "uniform-random"
        with pytest.raises(ValueError):
            summary.tables_by("collector_options")

    def test_unknown_metric_rejected(self):
        run = run_campaign(tiny_spec(seeds=(0,)))
        with pytest.raises(KeyError):
            aggregate_campaign(run.records, metrics=("no-such-metric",))

    def test_empty_records_rejected(self):
        with pytest.raises(ValueError):
            aggregate_campaign([])

    def test_csv_and_json_exports_are_full_precision(self):
        run = run_campaign(tiny_spec(seeds=(0, 1)))
        summary = aggregate_campaign(run.records, group_by=("collector",))
        csv_text = summary.to_csv()
        assert csv_text.splitlines()[0].startswith("collector,peak_retained_mean")
        document = json.loads(summary.to_json())
        assert document["campaign"] == "tiny"
        ratio = document["groups"][0]["stats"]["collection_ratio"]["mean"]
        assert 0.0 <= ratio <= 1.0


class TestCli:
    def test_dry_run_prints_expansion(self, capsys):
        assert campaign_main(["--dry-run", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "cells" in out and "paper-collector-comparison" in out

    def test_spec_file_run_with_store_and_out(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(
            json.dumps(
                {
                    "name": "cli-sweep",
                    "num_processes": 3,
                    "duration": 20.0,
                    "collectors": ["rdt-lgc"],
                    "workloads": ["uniform-random"],
                    "seeds": 2,
                }
            )
        )
        store = tmp_path / "store.jsonl"
        out_dir = tmp_path / "out"
        argv = [
            "--spec", str(spec_path),
            "--store", str(store),
            "--out", str(out_dir),
            "--group-by", "collector",
            "--quiet",
        ]
        assert campaign_main(argv) == 0
        first = capsys.readouterr().out
        assert "2 executed, 0 resumed" in first
        assert (out_dir / "cli-sweep.csv").exists()
        assert (out_dir / "cli-sweep.json").exists()
        # Second invocation resumes everything from the store.
        assert campaign_main(argv) == 0
        second = capsys.readouterr().out
        assert "0 executed, 2 resumed" in second

    def test_spec_file_rejects_default_grid_flags(self, tmp_path, capsys):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({"name": "x", "seeds": 1}))
        with pytest.raises(SystemExit):
            campaign_main(["--spec", str(spec_path), "--seeds", "50", "--dry-run"])
        assert "cannot be combined with --spec" in capsys.readouterr().err

    def test_group_by_typo_rejected_before_the_sweep_runs(self, capsys):
        with pytest.raises(SystemExit):
            campaign_main(["--group-by", "workload,colector", "--quiet"])
        assert "unknown --group-by axis colector" in capsys.readouterr().err
