"""Tests for the SQL result store: schema, claim/lease protocol, byte-identity."""

import json
import sqlite3

import pytest

from repro.scenarios.campaign import (
    CampaignSpec,
    CampaignStore,
    CollectorSpec,
    SQLResultStore,
    WorkloadSpec,
    aggregate_campaign,
    open_store,
    run_campaign,
)
from repro.scenarios.campaign.executor import execute_cell


def tiny_spec(*, seeds=(0, 1), name="tiny-sql"):
    return CampaignSpec(
        name=name,
        num_processes=3,
        duration=20.0,
        collectors=(CollectorSpec.of("rdt-lgc"), CollectorSpec.of("none")),
        workloads=(WorkloadSpec.of("uniform-random"),),
        failure_counts=(0,),
        seeds=seeds,
    )


@pytest.fixture
def store(tmp_path):
    return SQLResultStore(str(tmp_path / "store.sqlite"))


class TestSchema:
    def test_open_store_dispatch(self, tmp_path):
        assert isinstance(open_store(str(tmp_path / "a.jsonl")), CampaignStore)
        assert isinstance(open_store(str(tmp_path / "a.sqlite")), SQLResultStore)
        assert isinstance(open_store(str(tmp_path / "a.db")), SQLResultStore)

    def test_schema_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "old.sqlite")
        SQLResultStore(path)
        with sqlite3.connect(path) as connection:
            connection.execute(
                "UPDATE schema_info SET value = '999' WHERE key = 'version'"
            )
        with pytest.raises(ValueError, match="schema version"):
            SQLResultStore(path)

    def test_postgres_ready_schema(self, store):
        # The portability contract: no AUTOINCREMENT, no SQLite-only types.
        with store.connect() as connection:
            ddl = " ".join(
                row["sql"]
                for row in connection.execute(
                    "SELECT sql FROM sqlite_master WHERE sql IS NOT NULL"
                )
            ).upper()
        assert "AUTOINCREMENT" not in ddl
        assert "BLOB" not in ddl


class TestQueue:
    def test_enqueue_is_idempotent(self, store):
        cells = tiny_spec().cells()
        assert store.enqueue(cells) == len(cells)
        assert store.enqueue(cells) == 0
        assert store.status_counts() == {"pending": len(cells)}

    def test_enqueue_shard_registers_subset(self, store):
        cells = tiny_spec().cells()
        inserted = store.enqueue(cells, shard=(0, 2))
        assert inserted == len([i for i in range(len(cells)) if i % 2 == 0])

    def test_claim_marks_leased_and_is_exclusive(self, store):
        cells = tiny_spec().cells()
        store.enqueue(cells)
        first = store.claim(worker="w1", limit=len(cells))
        assert len(first) == len(cells)
        assert all(claim.attempt == 1 for claim in first)
        # Everything is leased with a live lease: nothing left to claim.
        assert store.claim(worker="w2", limit=10) == []
        assert store.status_counts() == {"leased": len(cells)}

    def test_claim_orders_by_expansion_index(self, store):
        cells = tiny_spec().cells()
        store.enqueue(cells)
        claimed = store.claim(worker="w", limit=len(cells))
        assert [c.cell_index for c in claimed] == list(range(len(cells)))

    def test_expired_lease_is_reclaimable_with_higher_attempt(self, store):
        cells = tiny_spec(seeds=(0,)).cells()
        store.enqueue(cells)
        claims = store.claim(
            worker="victim", limit=len(cells), lease_duration=10.0, now=100.0
        )
        assert [c.attempt for c in claims] == [1] * len(cells)
        # Before expiry: held; after: claimable by someone else.
        assert store.claim(worker="other", limit=10, now=105.0) == []
        [reclaim] = store.claim(worker="other", limit=1, now=111.0)
        assert reclaim.cell_id == claims[0].cell_id
        assert reclaim.attempt == 2
        outcomes = [
            entry["outcome"] for entry in store.lease_history(reclaim.cell_id)
        ]
        assert outcomes == ["expired", None]

    def test_stale_completion_is_refused(self, store):
        cells = tiny_spec(seeds=(0,)).cells()
        store.enqueue(cells)
        [claim] = store.claim(worker="victim", limit=1, lease_duration=10.0, now=100.0)
        [reclaim] = store.claim(worker="other", limit=1, now=200.0)
        record = execute_cell(cells[claim.cell_index])
        assert store.complete(record, worker="other", attempt=reclaim.attempt)
        # The victim finishing late must not overwrite the winner's row.
        assert not store.complete(record, worker="victim", attempt=claim.attempt)
        outcomes = {
            entry["attempt"]: entry["outcome"]
            for entry in store.lease_history(claim.cell_id)
        }
        assert outcomes == {1: "stale", 2: "ok"}
        assert store.status_counts()["ok"] == 1

    def test_complete_unknown_cell_rejected(self, store):
        with pytest.raises(ValueError, match="enqueue"):
            store.complete({"cell_id": "nope", "status": "ok", "metrics": {}})

    def test_remaining_distinguishes_claimable_from_inflight(self, store):
        cells = tiny_spec().cells()
        store.enqueue(cells)
        store.claim(worker="w", limit=1, lease_duration=1000.0, now=100.0)
        assert store.remaining(now=100.0) == (len(cells) - 1, 1)
        assert store.remaining(now=2000.0) == (len(cells), 0)

    def test_reset_failed_returns_cells_to_pending(self, store):
        cells = tiny_spec(seeds=(0,)).cells()
        store.enqueue(cells)
        [claim] = store.claim(worker="w", limit=1)
        store.complete(
            {"cell_id": claim.cell_id, "status": "failed", "error": "boom"},
            worker="w",
            attempt=claim.attempt,
        )
        assert store.status_counts()["failed"] == 1
        assert store.reset_failed() == 1
        assert "failed" not in store.status_counts()


class TestRecords:
    def test_records_round_trip_exactly(self, store):
        spec = tiny_spec(seeds=(0,))
        cells = spec.cells()
        store.enqueue(cells)
        originals = []
        for claim in store.claim(worker="w", limit=len(cells)):
            record = execute_cell(cells[claim.cell_index])
            originals.append(record)
            store.complete(record, worker="w", attempt=claim.attempt)
        read_back = store.records(include_incomplete=False)
        assert [json.dumps(r, sort_keys=True) for r in read_back] == [
            json.dumps(r, sort_keys=True) for r in originals
        ]

    def test_metric_int_float_distinction_survives(self, store):
        cell = tiny_spec(seeds=(0,)).cells()[0]
        store.enqueue([cell])
        store.append(
            {
                "cell_id": cell.cell_id,
                "params": cell.params(),
                "status": "ok",
                "metrics": {"count": 3, "ratio": 3.0},
            }
        )
        [record] = store.records(include_incomplete=False)
        assert type(record["metrics"]["count"]) is int
        assert type(record["metrics"]["ratio"]) is float

    def test_aggregate_byte_identical_to_jsonl_store(self, tmp_path):
        spec = tiny_spec()
        jsonl_run = run_campaign(spec, store_path=str(tmp_path / "a.jsonl"))
        sql_run = run_campaign(spec, store_path=str(tmp_path / "a.sqlite"))
        jsonl_summary = aggregate_campaign(jsonl_run.records)
        sql_summary = aggregate_campaign(sql_run.records)
        assert sql_summary.to_csv() == jsonl_summary.to_csv()
        assert sql_summary.to_json() == jsonl_summary.to_json()
        # And reading back from the SQL file alone reproduces the same bytes.
        reread = aggregate_campaign(
            SQLResultStore(str(tmp_path / "a.sqlite")).records(include_incomplete=False)
        )
        assert reread.to_csv() == jsonl_summary.to_csv()

    def test_merge_from_folds_shard_stores(self, tmp_path):
        spec = tiny_spec()
        run_campaign(spec, store_path=str(tmp_path / "s0.sqlite"), shard=(0, 2))
        run_campaign(spec, store_path=str(tmp_path / "s1.sqlite"), shard=(1, 2))
        merged = SQLResultStore(str(tmp_path / "merged.sqlite"))
        imported = merged.merge_from(str(tmp_path / "s0.sqlite"))
        imported += merged.merge_from(str(tmp_path / "s1.sqlite"))
        assert imported == spec.cell_count
        serial = run_campaign(spec)
        assert (
            aggregate_campaign(merged.records(include_incomplete=False)).to_csv()
            == aggregate_campaign(serial.records).to_csv()
        )

    def test_merge_is_idempotent(self, tmp_path):
        spec = tiny_spec(seeds=(0,))
        run_campaign(spec, store_path=str(tmp_path / "s.sqlite"))
        merged = SQLResultStore(str(tmp_path / "m.sqlite"))
        assert merged.merge_from(str(tmp_path / "s.sqlite")) == spec.cell_count
        assert merged.merge_from(str(tmp_path / "s.sqlite")) == 0
