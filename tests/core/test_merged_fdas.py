"""Tests for Algorithm 4: FDAS merged with RDT-LGC."""


from repro.core.merged_fdas import FdasWithRdtLgc


class TestInitialisation:
    def test_initial_checkpoint_taken_by_default(self):
        middleware = FdasWithRdtLgc(0, 3)
        assert middleware.storage.retained_indices() == [0]
        assert middleware.dependency_vector == (1, 0, 0)
        assert middleware.basic_checkpoints == 1

    def test_initial_checkpoint_can_be_deferred(self):
        middleware = FdasWithRdtLgc(0, 3, take_initial_checkpoint=False)
        assert middleware.storage.retained_indices() == []

    def test_exposes_embedded_collector(self):
        middleware = FdasWithRdtLgc(1, 2)
        assert middleware.gc.pid == 1
        assert middleware.pid == 1


class TestFdasForcedCheckpoints:
    def test_receive_after_send_with_new_info_forces_checkpoint(self):
        a = FdasWithRdtLgc(0, 2)
        b = FdasWithRdtLgc(1, 2)
        piggy = a.before_send()
        b.before_send()  # b has sent in its current interval
        forced = b.on_receive(piggy)
        assert forced
        assert b.forced_checkpoints == 1
        # The forced checkpoint is stored before the receive is processed, so
        # its vector does not yet include the new dependency.
        assert b.storage.get(1).dependency_vector == (0, 1)
        assert b.dependency_vector == (1, 2)

    def test_receive_without_prior_send_does_not_force(self):
        a = FdasWithRdtLgc(0, 2)
        b = FdasWithRdtLgc(1, 2)
        forced = b.on_receive(a.before_send())
        assert not forced
        assert b.forced_checkpoints == 0
        assert b.dependency_vector == (1, 1)

    def test_receive_without_new_information_does_not_force(self):
        a = FdasWithRdtLgc(0, 2)
        b = FdasWithRdtLgc(1, 2)
        piggy = a.before_send()
        b.on_receive(piggy)
        b.before_send()
        assert not b.on_receive(piggy)

    def test_sent_flag_cleared_by_checkpoint(self):
        a = FdasWithRdtLgc(0, 2)
        b = FdasWithRdtLgc(1, 2)
        b.before_send()
        b.take_checkpoint()
        assert not b.sent_in_current_interval
        assert not b.on_receive(a.before_send())


class TestMergedGarbageCollection:
    def test_shared_vector_drives_collection(self):
        a = FdasWithRdtLgc(0, 2)
        b = FdasWithRdtLgc(1, 2)
        b.on_receive(a.before_send())      # UC[0] -> s1^0
        b.take_checkpoint()                # s1^1
        b.take_checkpoint()                # s1^2 -> s1^1 collected
        assert b.storage.retained_indices() == [0, 2]
        assert b.gc.collected_indices() == [1]

    def test_rollback_delegates_to_algorithm3(self):
        a = FdasWithRdtLgc(0, 2)
        b = FdasWithRdtLgc(1, 2)
        b.on_receive(a.before_send())
        b.take_checkpoint()
        result = b.on_rollback(1, last_interval_vector=(1, 2))
        assert result.rollback_index == 1
        assert b.storage.retained_indices() == [0, 1]
        assert not b.sent_in_current_interval

    def test_peer_rollback_delegates(self):
        a = FdasWithRdtLgc(0, 2)
        b = FdasWithRdtLgc(1, 2)
        b.on_receive(a.before_send())
        b.take_checkpoint()
        assert b.on_peer_rollback((5, 2)) == [0]

    def test_state_view_matches_embedded_collector(self):
        middleware = FdasWithRdtLgc(0, 2)
        assert middleware.state_view() == middleware.gc.state_view()


class TestCounters:
    def test_basic_and_forced_counters(self):
        a = FdasWithRdtLgc(0, 2)
        b = FdasWithRdtLgc(1, 2)
        b.take_checkpoint()
        b.before_send()
        b.on_receive(a.before_send())
        assert b.basic_checkpoints == 2   # initial + explicit
        assert b.forced_checkpoints == 1
