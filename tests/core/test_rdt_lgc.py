"""Unit tests for RDT-LGC during normal execution periods (Algorithm 2)."""

import pytest

from repro.core.rdt_lgc import RdtLgc
from repro.storage.stable import StableStorage


class TestInitialisation:
    def test_initial_state(self):
        gc = RdtLgc(0, 3)
        assert gc.dependency_vector == (0, 0, 0)
        assert gc.uncollected.view() == (None, None, None)
        assert gc.retained_indices() == []

    def test_pid_validation(self):
        with pytest.raises(ValueError):
            RdtLgc(3, 3)

    def test_external_storage_is_used(self):
        storage = StableStorage(1)
        gc = RdtLgc(1, 2, storage)
        gc.on_checkpoint()
        assert storage.retained_indices() == [0]
        assert gc.storage is storage


class TestCheckpointHandler:
    def test_checkpoint_stores_dv_and_advances(self):
        gc = RdtLgc(0, 2)
        index = gc.on_checkpoint()
        assert index == 0
        assert gc.storage.get(0).dependency_vector == (0, 0)
        assert gc.dependency_vector == (1, 0)
        assert gc.uncollected.view() == (0, None)

    def test_checkpoint_index_equals_interval(self):
        gc = RdtLgc(0, 2)
        assert gc.on_checkpoint() == 0
        assert gc.on_checkpoint() == 1
        assert gc.on_checkpoint() == 2

    def test_unreferenced_previous_checkpoint_is_collected(self):
        gc = RdtLgc(0, 2)
        gc.on_checkpoint()
        gc.on_checkpoint()
        # s^0 was only protected by UC[0]; taking s^1 releases and collects it.
        assert gc.retained_indices() == [1]
        assert gc.collected_indices() == [0]

    def test_checkpoint_metadata_forwarded_to_storage(self):
        gc = RdtLgc(0, 2)
        gc.on_checkpoint(payload="snap", forced=True, time=3.0, size=4)
        record = gc.storage.get(0)
        assert record.payload == "snap" and record.forced and record.size == 4


class TestSendReceiveHandlers:
    def test_before_send_piggybacks_current_dv(self):
        gc = RdtLgc(0, 2)
        gc.on_checkpoint()
        assert gc.before_send() == (1, 0)

    def test_receive_updates_dv_and_relinks_uc(self):
        sender = RdtLgc(0, 2)
        receiver = RdtLgc(1, 2)
        sender.on_checkpoint()
        receiver.on_checkpoint()
        receiver.on_receive(sender.before_send())
        assert receiver.dependency_vector == (1, 1)
        # UC[0] now references the receiver's last stable checkpoint (index 0).
        assert receiver.uncollected.view() == (0, 0)
        assert receiver.last_known_checkpoint(0) == 0

    def test_receive_without_new_information_changes_nothing(self):
        sender = RdtLgc(0, 2)
        receiver = RdtLgc(1, 2)
        sender.on_checkpoint()
        receiver.on_checkpoint()
        piggyback = sender.before_send()
        receiver.on_receive(piggyback)
        before = receiver.state_view()
        assert receiver.on_receive(piggyback) == []
        assert receiver.state_view() == before

    def test_receive_of_own_future_information_rejected(self):
        gc = RdtLgc(0, 2)
        gc.on_checkpoint()
        with pytest.raises(RuntimeError):
            gc.on_receive((5, 0))

    def test_receive_wrong_size_rejected(self):
        gc = RdtLgc(0, 2)
        with pytest.raises(ValueError):
            gc.on_receive((1, 2, 3))

    def test_checkpoint_pinned_by_remote_reference_survives(self):
        sender = RdtLgc(0, 2)
        receiver = RdtLgc(1, 2)
        sender.on_checkpoint()
        receiver.on_checkpoint()
        receiver.on_receive(sender.before_send())  # UC[0] -> s^0
        receiver.on_checkpoint()                   # UC[1] -> s^1, s^0 still pinned
        assert receiver.retained_indices() == [0, 1]
        receiver.on_checkpoint()                   # s^1 unpinned -> collected
        assert receiver.retained_indices() == [0, 2]
        assert receiver.collected_indices() == [1]


class TestSpaceBound:
    def test_per_process_bound_is_n(self):
        """Theorem-5 discussion: at most n retained checkpoints per process."""
        n = 5
        gcs = [RdtLgc(pid, n) for pid in range(n)]
        for gc in gcs:
            gc.on_checkpoint()
        # Drive the worst-case schedule: in round k, every process checkpoints
        # and then process k broadcasts fresh information about itself.
        for round_index in range(1, n + 1):
            sender = gcs[round_index - 1]
            for gc in gcs:
                gc.on_checkpoint()
            piggyback = sender.before_send()
            for gc in gcs:
                if gc is not sender:
                    gc.on_receive(piggyback)
        for gc in gcs:
            gc.on_checkpoint()
            assert gc.storage.retained_count() <= n

    def test_state_view_matches_components(self):
        gc = RdtLgc(0, 3)
        gc.on_checkpoint()
        view = gc.state_view()
        assert view.dependency_vector == gc.dependency_vector
        assert view.uncollected == gc.uncollected.view()
        assert "DV" in str(view)
