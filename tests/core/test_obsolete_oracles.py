"""Tests for the obsolescence characterisations (Definition 7, Theorems 1 & 2, Corollary 1)."""

from repro.ccp.checkpoint import CheckpointId
from repro.core.obsolete import (
    needless_stable_checkpoints,
    obsolete_per_process,
    obsolete_stable_checkpoints_corollary1,
    obsolete_stable_checkpoints_theorem1,
    obsolete_stable_checkpoints_theorem2,
    retained_stable_checkpoints_theorem1,
)


class TestTheorem1:
    def test_last_stable_checkpoints_are_never_obsolete(self, figure1_ccp):
        obsolete = obsolete_stable_checkpoints_theorem1(figure1_ccp)
        for pid in figure1_ccp.processes:
            assert figure1_ccp.last_stable_id(pid) not in obsolete

    def test_figure1_obsolete_set(self, figure1_ccp):
        obsolete = obsolete_stable_checkpoints_theorem1(figure1_ccp)
        # Only the initial checkpoints of p1 and p3 are obsolete: every other
        # stable checkpoint is either a process's last one or pinned by a
        # dependency on p1's last checkpoint (via m5 and m3).
        assert obsolete == {CheckpointId(0, 0), CheckpointId(2, 0)}

    def test_figure3_hole(self, figure3_ccp):
        """An obsolete checkpoint can sit between two retained ones (the Figure 3 holes)."""
        obsolete = obsolete_stable_checkpoints_theorem1(figure3_ccp)
        assert CheckpointId(0, 2) in obsolete
        assert CheckpointId(0, 1) not in obsolete
        assert CheckpointId(0, 3) not in obsolete

    def test_retained_is_complement_of_obsolete(self, figure3_ccp):
        obsolete = obsolete_stable_checkpoints_theorem1(figure3_ccp)
        retained = retained_stable_checkpoints_theorem1(figure3_ccp)
        all_stable = {
            cid for pid in figure3_ccp.processes for cid in figure3_ccp.stable_ids(pid)
        }
        assert obsolete | retained == all_stable
        assert obsolete & retained == set()


class TestLemmasAndEquivalences:
    def test_needless_equals_theorem1(self, figure1_ccp, figure3_ccp, figure4_ccp):
        """Lemma 3 + Theorem 1: obsolete iff needless in the current cut."""
        for ccp in (figure1_ccp, figure3_ccp, figure4_ccp):
            assert needless_stable_checkpoints(ccp) == obsolete_stable_checkpoints_theorem1(ccp)

    def test_lemma2_single_failures_suffice(self, figure1_ccp, figure3_ccp):
        """Lemma 2: needless w.r.t. singletons == needless w.r.t. all faulty sets."""
        for ccp in (figure1_ccp, figure3_ccp):
            assert needless_stable_checkpoints(ccp, singletons_only=True) == (
                needless_stable_checkpoints(ccp)
            )

    def test_theorem2_is_weaker_than_theorem1(self, figure1_ccp, figure3_ccp, figure4_ccp):
        """Causal knowledge can only identify a subset of the obsolete checkpoints."""
        for ccp in (figure1_ccp, figure3_ccp, figure4_ccp):
            assert obsolete_stable_checkpoints_theorem2(ccp) <= (
                obsolete_stable_checkpoints_theorem1(ccp)
            )

    def test_corollary1_equals_theorem2_on_rdt_patterns(
        self, figure1_ccp, figure3_ccp, figure4_ccp
    ):
        """Corollary 1 is Theorem 2 re-expressed over dependency vectors."""
        for ccp in (figure1_ccp, figure3_ccp, figure4_ccp):
            assert obsolete_stable_checkpoints_corollary1(ccp) == (
                obsolete_stable_checkpoints_theorem2(ccp)
            )


class TestFigure4Gap:
    def test_s2_1_is_obsolete_but_not_identifiable_from_causal_knowledge(self, figure4_ccp):
        """The paper's point about Figure 4: s2^1 is obsolete (Theorem 1) yet
        p2 cannot know it, because it never learns that p3 advanced past s3^1."""
        theorem1 = obsolete_stable_checkpoints_theorem1(figure4_ccp)
        theorem2 = obsolete_stable_checkpoints_theorem2(figure4_ccp)
        gap = theorem1 - theorem2
        assert CheckpointId(1, 1) in gap

    def test_identifiable_obsolete_checkpoints_match_figure4(self, figure4_ccp):
        theorem2 = obsolete_stable_checkpoints_theorem2(figure4_ccp)
        assert theorem2 == {CheckpointId(1, 2), CheckpointId(2, 1), CheckpointId(2, 2)}


class TestHelpers:
    def test_obsolete_per_process_groups_and_sorts(self, figure3_ccp):
        obsolete = obsolete_stable_checkpoints_theorem1(figure3_ccp)
        grouped = obsolete_per_process(figure3_ccp, obsolete)
        assert len(grouped) == figure3_ccp.num_processes
        flattened = {
            CheckpointId(pid, index)
            for pid, indices in enumerate(grouped)
            for index in indices
        }
        assert flattened == obsolete
        for indices in grouped:
            assert indices == sorted(indices)
