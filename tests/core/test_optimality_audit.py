"""Tests for the safety/optimality auditor (Theorems 4 and 5)."""

from repro.ccp.checkpoint import CheckpointId
from repro.core.obsolete import (
    obsolete_stable_checkpoints_theorem2,
    retained_stable_checkpoints_theorem2,
)
from repro.core.optimality import audit_garbage_collection, retained_from_storages
from repro.storage.stable import StableStorage


def _expected_retained(ccp):
    retained = {pid: [] for pid in ccp.processes}
    for cid in retained_stable_checkpoints_theorem2(ccp):
        retained[cid.pid].append(cid.index)
    return {pid: sorted(indices) for pid, indices in retained.items()}


class TestAudit:
    def test_optimal_retention_passes(self, figure4_ccp):
        audit = audit_garbage_collection(figure4_ccp, _expected_retained(figure4_ccp))
        assert audit.ok and audit.is_safe and audit.is_optimal

    def test_missing_required_checkpoint_is_a_safety_violation(self, figure4_ccp):
        retained = _expected_retained(figure4_ccp)
        retained[1] = [i for i in retained[1] if i != 3]  # drop p2's last checkpoint
        audit = audit_garbage_collection(figure4_ccp, retained)
        assert not audit.is_safe
        assert CheckpointId(1, 3) in audit.safety_violations

    def test_keeping_identifiably_obsolete_checkpoint_is_an_optimality_violation(
        self, figure4_ccp
    ):
        retained = _expected_retained(figure4_ccp)
        extra = next(iter(obsolete_stable_checkpoints_theorem2(figure4_ccp)))
        retained[extra.pid] = sorted(retained[extra.pid] + [extra.index])
        audit = audit_garbage_collection(figure4_ccp, retained)
        assert audit.is_safe
        assert not audit.is_optimal
        assert extra in audit.optimality_violations

    def test_optimality_check_can_be_disabled(self, figure4_ccp):
        retained = {
            pid: [cid.index for cid in figure4_ccp.stable_ids(pid)]
            for pid in figure4_ccp.processes
        }
        audit = audit_garbage_collection(figure4_ccp, retained, require_optimality=False)
        assert audit.is_safe and audit.is_optimal  # optimality simply not checked

    def test_counters(self, figure4_ccp):
        audit = audit_garbage_collection(figure4_ccp, _expected_retained(figure4_ccp))
        assert audit.retained_total == sum(
            len(v) for v in _expected_retained(figure4_ccp).values()
        )
        assert audit.required_total <= audit.retained_total
        assert audit.collectible_total == len(
            obsolete_stable_checkpoints_theorem2(figure4_ccp)
        )


class TestRetainedFromStorages:
    def test_extracts_indices(self):
        storage = StableStorage(0)
        storage.store(0, (0,))
        storage.store(1, (1,))
        storage.eliminate(0)
        assert retained_from_storages({0: storage}) == {0: [1]}
