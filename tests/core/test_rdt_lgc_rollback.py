"""Tests for RDT-LGC recovery sessions (Algorithm 3) and the peer shortcut."""

import pytest

from repro.core.rdt_lgc import RdtLgc


def _pair_with_dependency():
    """p1 knows p0's checkpoint 0 and ends up retaining its checkpoints {0, 3}.

    p1 takes s^0 (stored DV (0,0)), learns about p0's s^0, and then takes three
    more checkpoints; RDT-LGC keeps s^0 pinned through ``UC[0]`` and the last
    checkpoint through ``UC[1]``, collecting the intermediate ones.
    """
    p0 = RdtLgc(0, 2)
    p1 = RdtLgc(1, 2)
    p0.on_checkpoint()
    p1.on_checkpoint()
    p1.on_receive(p0.before_send())   # UC[0] -> s1^0
    for _ in range(3):
        p1.on_checkpoint()
    assert p1.retained_indices() == [0, 3]
    return p0, p1


class TestRollbackWithGlobalInformation:
    def test_rollback_to_last_checkpoint_rebuilds_uc(self):
        _, p1 = _pair_with_dependency()
        result = p1.on_rollback(3, last_interval_vector=(1, 4))
        assert result.rolled_back == ()
        assert result.collected == ()
        assert p1.dependency_vector == (1, 4)
        assert p1.retained_indices() == [0, 3]
        assert p1.uncollected.view() == (0, 3)

    def test_rollback_to_earlier_checkpoint_discards_later_ones(self):
        _, p1 = _pair_with_dependency()
        result = p1.on_rollback(0, last_interval_vector=(1, 1))
        assert result.rolled_back == (3,)
        assert p1.retained_indices() == [0]
        assert p1.dependency_vector == (0, 1)
        # The rollback checkpoint is protected by the process's own entry.
        assert p1.uncollected.referenced_index(1) == 0

    def test_rollback_requires_checkpoint_on_storage(self):
        _, p1 = _pair_with_dependency()
        with pytest.raises(KeyError):
            p1.on_rollback(2)  # s^2 was collected during normal execution

    def test_rollback_collects_checkpoints_no_longer_denied(self):
        """The LI[f] <= 0 edge case: no process denies anything, so only the
        rollback checkpoint itself stays protected."""
        _, p1 = _pair_with_dependency()
        result = p1.on_rollback(3, last_interval_vector=(0, 4))
        assert 0 in result.collected
        assert p1.retained_indices() == [3]

    def test_wrong_li_size_rejected(self):
        _, p1 = _pair_with_dependency()
        with pytest.raises(ValueError):
            p1.on_rollback(3, last_interval_vector=(1, 2, 3))

    def test_own_entry_always_references_rollback_checkpoint(self):
        _, p1 = _pair_with_dependency()
        p1.on_rollback(3, last_interval_vector=(1, 4))
        assert p1.uncollected.referenced_index(1) == 3


class TestRollbackWithCausalKnowledgeOnly:
    def test_dv_variant_uses_recreated_vector(self):
        _, p1 = _pair_with_dependency()
        result = p1.on_rollback(3)
        assert p1.dependency_vector == (1, 4)
        assert result.retained == (0, 3)

    def test_dv_variant_matches_li_variant_when_knowledge_is_current(self):
        _, a = _pair_with_dependency()
        _, b = _pair_with_dependency()
        li_result = a.on_rollback(3, last_interval_vector=(1, 4))
        dv_result = b.on_rollback(3)
        assert li_result.retained == dv_result.retained
        assert li_result.collected == dv_result.collected

    def test_indices_are_reused_after_rollback(self):
        _, p1 = _pair_with_dependency()
        p1.on_rollback(0, last_interval_vector=(1, 1))
        # The next checkpoint reuses index 1; the rollback checkpoint s^0 is
        # then obsolete (the rollback erased the dependency that pinned it)
        # and is collected when its UC reference is released.
        assert p1.on_checkpoint() == 1
        assert p1.retained_indices() == [1]


class TestPeerRollback:
    def test_no_release_when_knowledge_is_still_valid(self):
        _, p1 = _pair_with_dependency()
        assert p1.on_peer_rollback((1, 4)) == []
        assert p1.retained_indices() == [0, 3]

    def test_release_when_peer_restarts_ahead_of_our_knowledge(self):
        _, p1 = _pair_with_dependency()
        eliminated = p1.on_peer_rollback((5, 4))
        assert eliminated == [0]
        assert p1.retained_indices() == [3]

    def test_peer_rollback_wrong_size_rejected(self):
        _, p1 = _pair_with_dependency()
        with pytest.raises(ValueError):
            p1.on_peer_rollback((1,))
