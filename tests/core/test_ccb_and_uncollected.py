"""Unit tests for the CCB and the UC table (Algorithm 1)."""

import pytest

from repro.core.ccb import CheckpointControlBlock
from repro.core.uncollected import UncollectedTable


class TestCheckpointControlBlock:
    def test_initial_reference_count(self):
        ccb = CheckpointControlBlock(3)
        assert ccb.index == 3 and ccb.ref_count == 1

    def test_acquire_release_cycle(self):
        ccb = CheckpointControlBlock(0)
        ccb.acquire()
        assert not ccb.release()
        assert ccb.release()

    def test_release_below_zero_rejected(self):
        ccb = CheckpointControlBlock(0, ref_count=0)
        with pytest.raises(RuntimeError):
            ccb.release()

    def test_invalid_constructor_arguments(self):
        with pytest.raises(ValueError):
            CheckpointControlBlock(-1)
        with pytest.raises(ValueError):
            CheckpointControlBlock(0, ref_count=-1)


class TestUncollectedTable:
    def test_requires_at_least_one_entry(self):
        with pytest.raises(ValueError):
            UncollectedTable(0)

    def test_new_ccb_and_view(self):
        table = UncollectedTable(3)
        table.new_ccb(0, 5)
        assert table.view() == (5, None, None)
        assert table.referenced_index(0) == 5
        assert table.referenced_indices() == {5}

    def test_link_shares_ccb(self):
        table = UncollectedTable(3)
        table.new_ccb(0, 2)
        table.link(1, 0)
        assert table.view() == (2, 2, None)
        assert table.reference_count(2) == 2

    def test_link_to_null_entry_rejected(self):
        table = UncollectedTable(2)
        with pytest.raises(RuntimeError):
            table.link(1, 0)

    def test_link_over_live_reference_rejected(self):
        table = UncollectedTable(2)
        table.new_ccb(0, 0)
        table.new_ccb(1, 1)
        with pytest.raises(RuntimeError):
            table.link(1, 0)

    def test_new_ccb_over_live_reference_rejected(self):
        table = UncollectedTable(2)
        table.new_ccb(0, 0)
        with pytest.raises(RuntimeError):
            table.new_ccb(0, 1)

    def test_release_eliminates_when_last_reference_drops(self):
        eliminated = []
        table = UncollectedTable(2, on_eliminate=eliminated.append)
        table.new_ccb(0, 4)
        assert table.release(0) == 4
        assert eliminated == [4]
        assert table.view() == (None, None)

    def test_release_keeps_checkpoint_with_remaining_references(self):
        eliminated = []
        table = UncollectedTable(2, on_eliminate=eliminated.append)
        table.new_ccb(0, 4)
        table.link(1, 0)
        assert table.release(0) is None
        assert eliminated == []
        assert table.view() == (None, 4)

    def test_release_of_null_entry_is_a_no_op(self):
        table = UncollectedTable(2)
        assert table.release(1) is None

    def test_eliminated_history(self):
        table = UncollectedTable(1)
        table.new_ccb(0, 0)
        table.release(0)
        table.new_ccb(0, 1)
        table.release(0)
        assert table.eliminated_history() == [0, 1]


class TestRebuild:
    def test_rebuild_assigns_and_collects_unreferenced(self):
        eliminated = []
        table = UncollectedTable(3, on_eliminate=eliminated.append)
        table.new_ccb(0, 0)
        collected = table.rebuild({0: 2, 1: 2, 2: 5}, stored_indices=[1, 2, 5])
        assert collected == [1]
        assert eliminated == [1]
        assert table.view() == (2, 2, 5)
        assert table.reference_count(2) == 2

    def test_rebuild_with_empty_assignment_collects_everything(self):
        table = UncollectedTable(2)
        collected = table.rebuild({}, stored_indices=[0, 1, 2])
        assert collected == [0, 1, 2]
        assert table.view() == (None, None)

    def test_rebuild_rejects_unknown_checkpoint(self):
        table = UncollectedTable(2)
        with pytest.raises(KeyError):
            table.rebuild({0: 7}, stored_indices=[0, 1])
