"""Tests for the unified ``python -m repro`` façade and the query CLI."""

import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.query_cli import main as query_main
from repro.scenarios.campaign import run_campaign, spec_from_mapping

SPEC_DOCUMENT = {
    "name": "cli-facade",
    "num_processes": 3,
    "duration": 10.0,
    "collectors": ["rdt-lgc", "none"],
    "workloads": ["ring"],
    "failure_counts": [0],
    "seeds": 1,
}


@pytest.fixture
def store(tmp_path):
    path = str(tmp_path / "sweep.sqlite")
    run_campaign(spec_from_mapping(SPEC_DOCUMENT), store_path=path)
    return path


class TestDispatcher:
    def test_help_lists_every_subcommand(self, capsys):
        assert repro_main(["--help"]) == 0
        out = capsys.readouterr().out
        for name in ("campaign", "trace", "explore", "live", "query"):
            assert name in out

    def test_no_arguments_prints_usage(self, capsys):
        assert repro_main([]) == 0
        assert "usage: python -m repro" in capsys.readouterr().out

    def test_unknown_command_is_a_usage_error(self, capsys):
        assert repro_main(["destroy"]) == 2
        err = capsys.readouterr().err
        assert "unknown command" in err

    def test_campaign_dispatch(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps(SPEC_DOCUMENT))
        assert repro_main(["campaign", "--spec", str(spec_path), "--dry-run"]) == 0
        assert "2 cells" in capsys.readouterr().out

    def test_query_dispatch(self, capsys):
        assert repro_main(["query", "list"]) == 0
        assert "retained-winner" in capsys.readouterr().out


class TestQueryCli:
    def test_status(self, store, capsys):
        assert query_main(["status", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "'ok': 2" in out

    def test_status_json(self, store, capsys):
        assert query_main(["status", "--store", store, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["by_status"] == {"ok": 2}
        assert document["claimable"] == 0

    def test_canned_query_renders_rows(self, store, capsys):
        assert query_main(["retained-winner", "--store", store]) == 0
        assert "rdt-lgc" in capsys.readouterr().out

    def test_canned_query_json_and_params(self, store, capsys):
        assert query_main([
            "collector-table", "--store", store,
            "--param", "metric=final_retained", "--json",
        ]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert len(rows) == 2

    def test_bad_param_is_usage_error(self, store, capsys):
        assert query_main([
            "retained-winner", "--store", store, "--param", "metrik=x",
        ]) == 2
        assert "accepted" in capsys.readouterr().err

    def test_aggregate_writes_documents(self, store, tmp_path, capsys):
        out_dir = tmp_path / "out"
        assert query_main([
            "aggregate", "--store", store, "--out", str(out_dir), "--json",
        ]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["campaign"] == "cli-facade"
        assert (out_dir / "cli-facade.csv").exists()
        assert (out_dir / "cli-facade.json").exists()

    def test_merge_folds_shards(self, tmp_path, capsys):
        spec = spec_from_mapping(SPEC_DOCUMENT)
        for shard in range(2):
            run_campaign(
                spec,
                store_path=str(tmp_path / f"shard{shard}.sqlite"),
                shard=(shard, 2),
            )
        merged = str(tmp_path / "merged.sqlite")
        assert query_main([
            "merge", "--store", merged,
            str(tmp_path / "shard0.sqlite"), str(tmp_path / "shard1.sqlite"),
        ]) == 0
        assert query_main(["aggregate", "--store", merged]) == 0

    def test_merge_missing_source_is_usage_error(self, tmp_path):
        assert query_main([
            "merge", "--store", str(tmp_path / "m.sqlite"),
            str(tmp_path / "ghost.sqlite"),
        ]) == 2


class TestDeprecatedAliases:
    """The historical spellings keep working and say where to go."""

    @pytest.mark.parametrize(
        "module",
        ["repro.campaign", "repro.traceio", "repro.explore", "repro.live"],
    )
    def test_alias_warns_once_and_still_works(self, module):
        result = subprocess.run(
            [sys.executable, "-m", module, "--help"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
            timeout=120,
        )
        assert result.returncode == 0
        assert "deprecated" in result.stderr
        assert "python -m repro " in result.stderr
        assert "usage" in result.stdout.lower()

    def test_unified_spelling_does_not_warn(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "query", "list"],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": os.pathsep.join(sys.path)},
            timeout=120,
        )
        assert result.returncode == 0
        assert "deprecated" not in result.stderr
