"""Tests for ``repro.api`` — the load_spec / run / query façade."""

import json

import pytest

from repro import api
from repro.explore.program import ExploreConfig
from repro.scenarios.campaign.spec import CampaignSpec
from repro.simulation import SimulationConfig, SimulationResult

CAMPAIGN_DOC = {
    "name": "api-sweep",
    "num_processes": 3,
    "duration": 10.0,
    "collectors": ["rdt-lgc", "none"],
    "workloads": ["ring"],
    "failure_counts": [0],
    "seeds": 1,
}


class TestLoadSpec:
    def test_kind_inference(self):
        assert isinstance(api.load_spec(CAMPAIGN_DOC), CampaignSpec)
        assert isinstance(
            api.load_spec({"num_processes": 2, "duration": 5.0}), SimulationConfig
        )
        assert isinstance(
            api.load_spec(
                {"num_processes": 2, "program": [{"op": "checkpoint", "pid": 0}]}
            ),
            ExploreConfig,
        )

    def test_explicit_kind_key_wins(self):
        spec = api.load_spec({"kind": "live", "num_processes": 2, "duration": 5.0})
        assert isinstance(spec, SimulationConfig)
        assert spec.backend == "live"

    def test_built_objects_pass_through(self):
        spec = api.load_spec(CAMPAIGN_DOC)
        assert api.load_spec(spec) is spec

    def test_json_file_source(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(CAMPAIGN_DOC))
        spec = api.load_spec(str(path))
        assert isinstance(spec, CampaignSpec)
        assert spec.name == "api-sweep"

    def test_missing_file_names_the_source(self):
        with pytest.raises(api.SpecValidationError, match="cannot read"):
            api.load_spec("/no/such/spec.json")

    def test_unknown_collector_names_field_and_accepted_values(self):
        document = dict(CAMPAIGN_DOC, collectors=["rdt-lgc", "sweeper"])
        with pytest.raises(api.SpecValidationError) as excinfo:
            api.load_spec(document)
        assert excinfo.value.field == "collectors[1]"
        assert "rdt-lgc" in excinfo.value.accepted
        assert "sweeper" in str(excinfo.value)

    def test_unknown_workload_in_simulation_spec(self):
        with pytest.raises(api.SpecValidationError) as excinfo:
            api.load_spec({"num_processes": 2, "duration": 5.0, "workload": "spiral"})
        assert excinfo.value.field == "workload"
        assert "uniform-random" in excinfo.value.accepted

    def test_unknown_key_lists_known_keys(self):
        with pytest.raises(api.SpecValidationError) as excinfo:
            api.load_spec({"num_processes": 2, "durations": 5.0})
        assert excinfo.value.field == "durations"
        assert "duration" in excinfo.value.accepted

    def test_bad_program_step_is_located(self):
        with pytest.raises(api.SpecValidationError) as excinfo:
            api.load_spec(
                {
                    "num_processes": 2,
                    "program": [
                        {"op": "checkpoint", "pid": 0},
                        {"op": "teleport", "pid": 1},
                    ],
                }
            )
        assert excinfo.value.field == "program[1].op"
        assert excinfo.value.accepted == ["send", "checkpoint", "crash"]

    def test_bad_audit_value(self):
        with pytest.raises(api.SpecValidationError) as excinfo:
            api.load_spec(dict(CAMPAIGN_DOC, audit="loud"))
        assert excinfo.value.field == "audit"
        assert excinfo.value.accepted == ["off", "safety", "full"]


class TestRun:
    def test_simulation_run(self):
        result = api.run(
            {"num_processes": 3, "duration": 10.0, "workload": "ring", "seed": 7}
        )
        assert isinstance(result, SimulationResult)

    def test_campaign_run_with_store_and_query(self, tmp_path):
        store = str(tmp_path / "api.sqlite")
        run = api.run(CAMPAIGN_DOC, store=store)
        assert run.executed == 2
        summary = api.query(store)
        assert json.loads(summary.to_json())["campaign"] == "api-sweep"
        rows = api.query(store, "retained-winner")
        assert rows and all(row["rank"] == 1 for row in rows)

    def test_explore_run(self):
        result = api.run(
            {
                "num_processes": 2,
                "program": [
                    {"op": "send", "pid": 0, "target": 1},
                    {"op": "checkpoint", "pid": 1},
                ],
            },
            max_executions=50,
        )
        assert result.stats.executions > 0

    def test_campaign_options_rejected_for_simulation(self, tmp_path):
        with pytest.raises(api.SpecValidationError, match="campaign"):
            api.run(
                {"num_processes": 2, "duration": 5.0},
                store=str(tmp_path / "x.sqlite"),
            )

    def test_explore_budget_rejected_for_campaign(self):
        with pytest.raises(api.SpecValidationError, match="explore"):
            api.run(CAMPAIGN_DOC, max_executions=5)


class TestQuery:
    def test_unknown_query_names_accepted(self, tmp_path):
        store = str(tmp_path / "q.sqlite")
        api.run(CAMPAIGN_DOC, store=store)
        with pytest.raises(api.SpecValidationError) as excinfo:
            api.query(store, "who-wins")
        assert "retained-winner" in excinfo.value.accepted

    def test_unknown_query_param_surfaces(self, tmp_path):
        store = str(tmp_path / "q2.sqlite")
        api.run(CAMPAIGN_DOC, store=store)
        with pytest.raises(api.SpecValidationError, match="accepted"):
            api.query(store, "retained-winner", metrik="peak_retained")
