"""End-to-end integration tests: protocols x collectors, failures, comparisons."""

import pytest

from repro.ccp.rdt import check_rdt
from repro.gc.registry import available_collectors
from repro.protocols.registry import available_protocols
from repro.scenarios.experiments import run_random_simulation, run_worst_case
from repro.simulation.workloads import (
    ClientServerWorkload,
    PipelineWorkload,
    RingWorkload,
)


class TestProtocolCollectorMatrix:
    @pytest.mark.parametrize("protocol", ["fdas", "fdi", "cbr"])
    @pytest.mark.parametrize(
        "collector", ["none", "rdt-lgc", "wang-coordinated", "all-process-line"]
    )
    def test_every_combination_runs_and_is_safe(self, protocol, collector):
        options = {"period": 20.0} if collector in ("wang-coordinated", "all-process-line") else {}
        result = run_random_simulation(
            num_processes=3,
            duration=60.0,
            seed=8,
            protocol=protocol,
            collector=collector,
            collector_options=options,
            audit="safety",
            crashes=1,
        )
        assert result.all_audits_safe
        assert result.total_checkpoints > 0

    @pytest.mark.parametrize("protocol", available_protocols(rdt_only=True))
    def test_rdt_lgc_is_optimal_under_every_rdt_protocol(self, protocol):
        result = run_random_simulation(
            num_processes=4,
            duration=80.0,
            seed=9,
            protocol=protocol,
            collector="rdt-lgc",
            audit="full",
        )
        assert result.all_audits_safe and result.all_audits_optimal


class TestDomainWorkloads:
    @pytest.mark.parametrize(
        "workload",
        [
            ClientServerWorkload(),
            PipelineWorkload(),
            RingWorkload(),
        ],
        ids=["client-server", "pipeline", "ring"],
    )
    def test_rdt_lgc_on_domain_workloads(self, workload):
        result = run_random_simulation(
            num_processes=4,
            duration=120.0,
            seed=12,
            workload=workload,
            protocol="fdas",
            collector="rdt-lgc",
            audit="full",
            crashes=1,
        )
        assert result.all_audits_safe and result.all_audits_optimal
        assert result.max_retained_any_process <= 5
        final_ccp = result.final_ccp
        assert final_ccp is not None
        assert check_rdt(final_ccp, collect_witnesses=False).is_rdt


class TestGarbageCollectionComparison:
    """The qualitative comparison of Section 5, regenerated online."""

    def _run(self, collector, seed=21, **options):
        return run_random_simulation(
            num_processes=4,
            duration=200.0,
            seed=seed,
            protocol="fdas",
            collector=collector,
            collector_options=options,
            mean_checkpoint_gap=6.0,
        )

    def test_rdt_lgc_bounds_storage_while_no_gc_grows(self):
        none = self._run("none")
        lgc = self._run("rdt-lgc")
        assert none.total_retained_final == none.total_checkpoints
        assert lgc.total_retained_final <= 4 * 4
        assert lgc.total_retained_final < none.total_retained_final

    def test_rdt_lgc_needs_no_control_messages_but_coordinated_schemes_do(self):
        lgc = self._run("rdt-lgc")
        wang = self._run("wang-coordinated", period=20.0)
        line = self._run("all-process-line", period=20.0)
        assert lgc.control_messages == 0
        assert wang.control_messages > 0
        assert line.control_messages > 0

    def test_wang_coordination_can_collect_what_causal_knowledge_cannot(self):
        """On the worst-case pattern, global knowledge collects almost everything
        while RDT-LGC (optimally) keeps n per process."""
        n = 4
        lgc = run_worst_case(n, collector="rdt-lgc")
        wang = run_worst_case(
            n, collector="wang-coordinated", collector_options={"period": 4.0}
        )
        assert lgc.total_retained_final == n * n
        assert wang.total_retained_final < lgc.total_retained_final

    def test_all_collectors_preserve_recoverability(self):
        """After every recovery the application restarts from a consistent line;
        this holds regardless of which collector is active."""
        for collector in available_collectors():
            options = {"period": 15.0} if collector in (
                "wang-coordinated",
                "all-process-line",
            ) else {}
            result = run_random_simulation(
                num_processes=3,
                duration=100.0,
                seed=31,
                collector=collector,
                collector_options=options,
                crashes=2,
                audit="safety",
            )
            assert len(result.recoveries) == 2
            assert result.all_audits_safe
