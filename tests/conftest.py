"""Shared fixtures: the paper's figures as CCPs."""

from __future__ import annotations

import pytest

from repro.ccp.pattern import CCP
from repro.scenarios.figures import figure1_ccp as _figure1_ccp
from repro.scenarios.figures import figure2_ccp as _figure2_ccp
from repro.scenarios.figures import figure3_ccp as _figure3_ccp
from repro.scenarios.figures import figure4_ccp as _figure4_ccp


@pytest.fixture
def figure1_ccp() -> CCP:
    return _figure1_ccp()


@pytest.fixture
def figure1_without_m3_ccp() -> CCP:
    return _figure1_ccp(include_m3=False)


@pytest.fixture
def figure2_ccp() -> CCP:
    return _figure2_ccp()


@pytest.fixture
def figure3_ccp() -> CCP:
    return _figure3_ccp()


@pytest.fixture
def figure4_ccp() -> CCP:
    return _figure4_ccp()
