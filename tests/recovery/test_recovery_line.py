"""Tests for recovery-line determination (Definition 5 and Lemma 1)."""

import pytest

from repro.recovery.recovery_line import (
    is_valid_recovery_line,
    recovery_line,
    recovery_line_brute_force,
    rolled_back_checkpoints,
)


class TestLemma1:
    def test_empty_faulty_set_means_no_rollback(self, figure1_ccp):
        line = recovery_line(figure1_ccp, [])
        assert line.indices == tuple(
            figure1_ccp.volatile_index(pid) for pid in figure1_ccp.processes
        )

    def test_faulty_process_component_is_stable(self, figure1_ccp):
        for pid in figure1_ccp.processes:
            line = recovery_line(figure1_ccp, [pid])
            assert line.indices[pid] <= figure1_ccp.last_stable(pid)

    def test_line_is_consistent_and_excludes_faulty_volatiles(self, figure1_ccp):
        for pid in figure1_ccp.processes:
            line = recovery_line(figure1_ccp, [pid])
            assert is_valid_recovery_line(figure1_ccp, line, [pid])

    def test_matches_brute_force_on_figures(self, figure1_ccp, figure3_ccp, figure4_ccp):
        """Lemma 1 agrees with the Definition 5 exhaustive search on RDT patterns."""
        for ccp in (figure1_ccp, figure3_ccp, figure4_ccp):
            for pid in ccp.processes:
                assert recovery_line(ccp, [pid]) == recovery_line_brute_force(ccp, [pid])

    def test_matches_brute_force_for_multi_failures(self, figure3_ccp):
        import itertools

        for size in (2, 3):
            for faulty in itertools.combinations(range(4), size):
                assert recovery_line(figure3_ccp, faulty) == recovery_line_brute_force(
                    figure3_ccp, faulty
                )

    def test_unknown_faulty_process_rejected(self, figure1_ccp):
        with pytest.raises(ValueError):
            recovery_line(figure1_ccp, [7])

    def test_faulty_process_without_stable_checkpoint_rejected(self):
        from repro.ccp.builder import CCPBuilder

        ccp = CCPBuilder(2, initial_checkpoints=False).build()
        with pytest.raises(ValueError):
            recovery_line(ccp, [0])


class TestFigure3Scenario:
    def test_last_stable_of_a_faulty_process_can_be_excluded(self, figure3_ccp):
        """The Figure 3 phenomenon: s3^last is not part of R_{p2,p3} because it
        is causally preceded by s2^last."""
        line = recovery_line(figure3_ccp, [1, 2])
        assert line.indices[1] == figure3_ccp.last_stable(1)
        assert line.indices[2] < figure3_ccp.last_stable(2)

    def test_expected_line_for_figure3(self, figure3_ccp):
        line = recovery_line(figure3_ccp, [1, 2])
        assert line.indices == (1, 2, 1, figure3_ccp.volatile_index(3))


class TestDominoEffect:
    def test_single_failure_rolls_everything_back_in_figure2(self, figure2_ccp):
        """Without RDT (Figure 2), one failure forces a restart from the initial state."""
        line = recovery_line_brute_force(figure2_ccp, [0])
        assert line.indices == (0, 0)

    def test_rolled_back_checkpoints_enumeration(self, figure2_ccp):
        line = recovery_line_brute_force(figure2_ccp, [0])
        rolled = rolled_back_checkpoints(figure2_ccp, line)
        # p0 loses s^1, s^2 and its volatile state; p1 loses s^1 and its volatile.
        assert len(rolled) == 5


class TestMonotonicity:
    def test_more_failures_never_advance_the_line(self, figure3_ccp):
        single = recovery_line(figure3_ccp, [1])
        double = recovery_line(figure3_ccp, [1, 2])
        assert all(d <= s for d, s in zip(double.indices, single.indices))

    def test_line_is_dominated_by_volatile_state(self, figure3_ccp):
        line = recovery_line(figure3_ccp, [0, 1, 2, 3])
        for pid in figure3_ccp.processes:
            assert line.indices[pid] <= figure3_ccp.volatile_index(pid)
