"""Tests for the centralized recovery manager."""

from repro.ccp.checkpoint import CheckpointId
from repro.recovery.manager import RecoveryManager


class TestRollbackPlans:
    def test_plan_structure(self, figure3_ccp):
        plan = RecoveryManager().plan(figure3_ccp, [1, 2])
        assert plan.faulty == (1, 2)
        assert plan.recovery_line.indices == (1, 2, 1, figure3_ccp.volatile_index(3))
        assert set(plan.rolled_back_processes()) == {0, 1, 2}
        assert not plan.must_roll_back(3)

    def test_last_interval_vector(self, figure3_ccp):
        plan = RecoveryManager().plan(figure3_ccp, [1, 2])
        # Rolled-back processes: LI = component + 1; survivors: LI = volatile index.
        assert plan.last_interval_vector == (2, 3, 2, figure3_ccp.volatile_index(3))

    def test_rollback_for_and_as_dict(self, figure3_ccp):
        plan = RecoveryManager().plan(figure3_ccp, [1, 2])
        directive = plan.rollback_for(2)
        assert directive is not None and directive.rollback_index == 1
        assert plan.as_dict()[0] == 1
        assert plan.rollback_for(3) is None

    def test_faulty_process_always_rolls_back(self, figure1_ccp):
        for pid in figure1_ccp.processes:
            plan = RecoveryManager().plan(figure1_ccp, [pid])
            assert plan.must_roll_back(pid)

    def test_outcome_accounting(self, figure3_ccp):
        outcome = RecoveryManager().outcome(figure3_ccp, [1, 2])
        assert outcome.rolled_back_processes == 3
        assert outcome.lost_general_checkpoints == len(outcome.rolled_back)
        assert CheckpointId(2, 2) in outcome.rolled_back
        assert outcome.recovery_line == outcome.plan.recovery_line

    def test_no_failure_plan_is_a_no_op(self, figure1_ccp):
        plan = RecoveryManager().plan(figure1_ccp, [])
        assert plan.rollbacks == ()
        assert plan.last_interval_vector == tuple(
            figure1_ccp.volatile_index(pid) for pid in figure1_ccp.processes
        )
