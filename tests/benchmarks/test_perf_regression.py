"""Tier-1 smoke wiring for the perf-regression checker.

Runs :mod:`benchmarks.check_regression` in smoke mode (only the smoke-sized
sweep configurations, ratio comparison — hardware independent) against the
committed ``BENCH_perf.json``, and sanity-checks the committed document
itself: the headline acceptance row (8 processes / 2000 messages at >= 10x
over the brute-force reference), the datacenter-tier latency row (64
processes / 10^5 messages under 50 ms per instant), the medium-tier memory
section (>= 30% peak reduction from pruning) and the fresh pruned-run memory
gate (peak traced bytes must stay within 20% of the committed baseline).
"""

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_perf.json")


@pytest.fixture(scope="module")
def committed_document():
    if not os.path.exists(BENCH_PATH):
        pytest.skip("no committed BENCH_perf.json (fresh checkout before first sweep)")
    with open(BENCH_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestCommittedBenchDocument:
    def test_rows_are_well_formed(self, committed_document):
        rows = committed_document["rows"]
        assert rows
        for row in rows:
            assert row["kernel"] == "zigzag-blocked-bitset+incremental-ccp"
            assert row["speedup"] > 0
            assert row["new_per_instant_s"] > 0
            assert row["old_per_instant_s"] > 0
            # A measured old-path mean needs >= 3 samples to be a baseline;
            # anything else must say it is an extrapolation, explicitly.
            if row["old_extrapolated"]:
                assert "old_extrapolation_basis" in row
            else:
                assert row["old_instants_measured"] >= 3

    def test_headline_configuration_meets_speedup_floor(self, committed_document):
        headline = [
            row
            for row in committed_document["rows"]
            if row["processes"] == 8 and row["messages"] >= 2000
        ]
        assert headline, "sweep must include the 8-process / >=2000-message row"
        assert all(row["speedup"] >= 10.0 for row in headline)

    def test_large_tier_rows_are_pruned_and_extrapolated(self, committed_document):
        large = [
            row
            for row in committed_document["rows"]
            if row["processes"] >= 32 and row["messages"] >= 20000
        ]
        assert large, "sweep must include the datacenter tier"
        for row in large:
            assert row["pruned"] is True
            assert row["old_extrapolated"] is True
            assert row["pruned_events"] > 0
            # Pruning is the point: the live log must be a small fraction of
            # the full event count that was compacted away.
            assert row["live_log_events"] < row["pruned_events"] / 10

    def test_committed_document_gates_pass(self, committed_document):
        """The static acceptance gates over the committed document itself."""
        from benchmarks.check_regression import check_committed_document

        assert check_committed_document(BENCH_PATH) == []

    def test_memory_section_meets_reduction_floor(self, committed_document):
        memory = committed_document["memory"]
        assert memory["peak_pruned_bytes"] > 0
        assert memory["peak_unpruned_bytes"] > memory["peak_pruned_bytes"]
        assert memory["reduction"] >= 0.30


def test_smoke_regression_check_passes(committed_document):
    """The live kernel must not have regressed against the committed baseline.

    Ratio mode only (kernel vs brute-force measured seconds apart in this
    process), so the check is meaningful on any hardware; the generous
    threshold keeps tier-1 robust to noisy CI boxes while still catching a
    genuine kernel regression, which shows up as an order-of-magnitude shift.
    The campaign gate is skipped here — the dedicated test below runs it once
    with clear failure attribution, instead of paying for the sweep twice.
    The memory gate (tracemalloc-based, hardware independent) runs as part of
    this check: a pruned medium-tier run whose peak grows more than 20% over
    the committed baseline fails tier-1.
    """
    from benchmarks.check_regression import main

    assert main(["--smoke", "--threshold", "0.5", "--skip-campaign"]) == 0


def test_campaign_gate_is_deterministic_across_worker_counts():
    """Serial and 2-worker execution of the same campaign spec must yield
    byte-identical aggregate tables — the property paper-scale sweeps rely on."""
    from benchmarks.check_regression import check_campaign_determinism

    assert check_campaign_determinism(workers=2) == []
