"""Tier-1 smoke wiring for the perf-regression checker.

Runs :mod:`benchmarks.check_regression` in smoke mode (only the smoke-sized
sweep configurations, ratio comparison — hardware independent) against the
committed ``BENCH_perf.json``, and sanity-checks the committed document
itself, including the headline acceptance row (8 processes / 2000 messages at
>= 10x over the brute-force reference).
"""

import json
import os
import sys

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)

BENCH_PATH = os.path.join(REPO_ROOT, "BENCH_perf.json")


@pytest.fixture(scope="module")
def committed_document():
    if not os.path.exists(BENCH_PATH):
        pytest.skip("no committed BENCH_perf.json (fresh checkout before first sweep)")
    with open(BENCH_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)


class TestCommittedBenchDocument:
    def test_rows_are_well_formed(self, committed_document):
        rows = committed_document["rows"]
        assert rows
        for row in rows:
            assert row["kernel"] == "zigzag-bitset+incremental-ccp"
            assert row["speedup"] > 0
            assert row["new_per_instant_s"] > 0
            assert row["old_per_instant_s"] > 0

    def test_headline_configuration_meets_speedup_floor(self, committed_document):
        headline = [
            row
            for row in committed_document["rows"]
            if row["processes"] == 8 and row["messages"] >= 2000
        ]
        assert headline, "sweep must include the 8-process / >=2000-message row"
        assert all(row["speedup"] >= 10.0 for row in headline)


def test_smoke_regression_check_passes(committed_document):
    """The live kernel must not have regressed against the committed baseline.

    Ratio mode only (kernel vs brute-force measured seconds apart in this
    process), so the check is meaningful on any hardware; the generous
    threshold keeps tier-1 robust to noisy CI boxes while still catching a
    genuine kernel regression, which shows up as an order-of-magnitude shift.
    The campaign gate is skipped here — the dedicated test below runs it once
    with clear failure attribution, instead of paying for the sweep twice.
    """
    from benchmarks.check_regression import main

    assert main(["--smoke", "--threshold", "0.5", "--skip-campaign"]) == 0


def test_campaign_gate_is_deterministic_across_worker_counts():
    """Serial and 2-worker execution of the same campaign spec must yield
    byte-identical aggregate tables — the property paper-scale sweeps rely on."""
    from benchmarks.check_regression import check_campaign_determinism

    assert check_campaign_determinism(workers=2) == []
