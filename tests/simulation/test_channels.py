"""Unit tests for the network fault-model library (`repro.simulation.channels`)."""

import random

import pytest

from repro.simulation.channels import (
    ChannelModel,
    DuplicatingChannel,
    GilbertElliottChannel,
    LatencyMatrixChannel,
    Partition,
    PartitionSchedule,
    UniformChannel,
    available_channels,
    channel_from_mapping,
    register_channel,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.network import (
    Network,
    NetworkConfig,
    network_config_from_mapping,
)
from repro.simulation.runner import SimulationConfig, run_simulation
from repro.simulation.workloads import UniformRandomWorkload


def _run(network: NetworkConfig, *, seed: int = 11, duration: float = 60.0, **kw):
    return run_simulation(
        SimulationConfig(
            num_processes=4,
            duration=duration,
            workload=UniformRandomWorkload(),
            network=network,
            seed=seed,
            audit="safety",
            **kw,
        )
    )


class TestUniformChannel:
    def test_explicit_uniform_channel_is_byte_identical_to_default(self):
        """NetworkConfig scalars and an explicit UniformChannel draw the same
        streams in the same order — the refactor's compatibility anchor."""
        implicit = _run(NetworkConfig())
        explicit = _run(NetworkConfig(channel=UniformChannel()))
        assert implicit.summary() == explicit.summary()
        assert implicit.retained_final == explicit.retained_final
        assert [s.retained_per_process for s in implicit.samples] == [
            s.retained_per_process for s in explicit.samples
        ]

    def test_validation(self):
        with pytest.raises(ValueError):
            UniformChannel(base_latency=-1.0)
        with pytest.raises(ValueError):
            UniformChannel(drop_probability=1.0)

    def test_sample_loses_and_delivers(self):
        channel = UniformChannel(drop_probability=0.5)
        rng = random.Random(0)
        fates = [channel.sample(None, 0, 1, rng) for _ in range(200)]
        lost = sum(1 for f in fates if not f)
        assert 0 < lost < 200
        for fate in fates:
            assert all(1.0 <= latency <= 1.5 for latency in fate)


class TestGilbertElliott:
    def test_loss_is_bursty(self):
        """With a sticky bad state losses arrive in runs, not i.i.d."""
        channel = GilbertElliottChannel(
            loss_good=0.0, loss_bad=1.0, p_good_to_bad=0.1, p_bad_to_good=0.2
        )
        state = channel.initial_state()
        rng = random.Random(42)
        outcomes = [bool(channel.sample(state, 0, 1, rng)) for _ in range(2000)]
        losses = outcomes.count(False)
        assert losses > 0
        # Expected loss concentration p_gb/(p_gb+p_bg) = 1/3; a run this long
        # cannot be loss-free nor all-loss.
        assert 0.15 < losses / len(outcomes) < 0.55
        # Burstiness: the longest loss run must exceed 1 (mean burst = 5).
        longest, current = 0, 0
        for delivered in outcomes:
            current = 0 if delivered else current + 1
            longest = max(longest, current)
        assert longest >= 3

    def test_validation(self):
        with pytest.raises(ValueError):
            GilbertElliottChannel(loss_bad=1.5)
        with pytest.raises(ValueError):
            GilbertElliottChannel(p_good_to_bad=-0.1)

    def test_simulation_stays_safe_under_bursty_loss(self):
        result = _run(
            NetworkConfig(channel=GilbertElliottChannel(loss_bad=0.6)), seed=3
        )
        assert result.messages_dropped > 0
        assert result.all_audits_safe


class TestDuplicatingChannel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DuplicatingChannel(copies=1)
        with pytest.raises(ValueError):
            DuplicatingChannel(channel=DuplicatingChannel())
        with pytest.raises(ValueError):
            DuplicatingChannel(duplicate_probability=1.5)

    def test_duplicates_are_delivered_and_counted(self):
        result = _run(
            NetworkConfig(
                channel=DuplicatingChannel(duplicate_probability=0.5, copies=3)
            ),
            seed=5,
        )
        assert result.messages_duplicated > 0
        # Duplicates are causally neutral: the audits stay clean.
        assert result.all_audits_safe

    def test_duplicate_deliveries_reach_the_duplicate_handler(self):
        engine = SimulationEngine(seed=2)
        network = Network(
            engine,
            NetworkConfig(
                channel=DuplicatingChannel(duplicate_probability=1.0, copies=2)
            ),
        )
        delivered, duplicates = [], []
        network.on_app_delivery(delivered.append)
        network.on_duplicate_delivery(duplicates.append)
        for _ in range(10):
            network.send_app_message(0, 1, (0, 0))
        engine.run()
        assert len(delivered) == 10
        assert len(duplicates) == 10
        assert network.stats.app_delivered == 10
        assert network.stats.app_duplicates_delivered == 10

    def test_duplicates_without_handler_fail_loudly(self):
        engine = SimulationEngine(seed=2)
        network = Network(
            engine,
            NetworkConfig(
                channel=DuplicatingChannel(duplicate_probability=1.0, copies=2)
            ),
        )
        network.on_app_delivery(lambda message: None)
        network.send_app_message(0, 1, (0, 0))
        with pytest.raises(RuntimeError):
            engine.run()


class TestLatencyMatrix:
    def test_asymmetric_latencies_apply_per_link(self):
        channel = LatencyMatrixChannel.of([[0.0, 1.0], [9.0, 0.0]], jitter=0.0)
        engine = SimulationEngine(seed=0)
        network = Network(engine, NetworkConfig(channel=channel))
        arrivals = []
        network.on_app_delivery(lambda m: arrivals.append((m.sender, engine.now)))
        network.send_app_message(0, 1, (0, 0))
        network.send_app_message(1, 0, (0, 0))
        engine.run()
        assert sorted(arrivals) == [(0, 1.0), (1, 9.0)]

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyMatrixChannel.of([[0.0, 1.0]])  # not square
        with pytest.raises(ValueError):
            LatencyMatrixChannel.of([[0.0, -1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            LatencyMatrixChannel(latencies=())

    def test_undersized_matrix_rejected_at_config_time(self):
        channel = LatencyMatrixChannel.of([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            SimulationConfig(
                num_processes=3,
                duration=10.0,
                workload=UniformRandomWorkload(),
                network=NetworkConfig(channel=channel),
            )


class TestPartitions:
    def test_separation_semantics(self):
        partition = Partition(start=10.0, end=20.0, groups=((0, 1),))
        assert partition.separates(0, 2)
        assert not partition.separates(0, 1)
        assert not partition.separates(2, 3)  # both in the implicit block
        assert partition.active_at(10.0) and not partition.active_at(20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            Partition(start=5.0, end=5.0, groups=((0,),))
        with pytest.raises(ValueError):
            Partition(start=0.0, end=1.0, groups=())
        with pytest.raises(ValueError):
            Partition(start=0.0, end=1.0, groups=((0,), (0, 1)))  # overlap
        schedule = PartitionSchedule.of([(0.0, 1.0, ((0, 5),))])
        with pytest.raises(ValueError):
            schedule.validate_for(4)

    def test_cross_cut_sends_are_blocked_while_active(self):
        schedule = PartitionSchedule.of([(10.0, 20.0, ((0,),))])
        engine = SimulationEngine(seed=0)
        network = Network(engine, NetworkConfig(jitter=0.0, partitions=schedule))
        delivered = []
        network.on_app_delivery(delivered.append)
        engine.schedule_at(5.0, lambda: network.send_app_message(0, 1, (0, 0)))
        engine.schedule_at(15.0, lambda: network.send_app_message(0, 1, (0, 0)))
        engine.schedule_at(15.0, lambda: network.send_app_message(1, 2, (0, 0)))
        engine.schedule_at(25.0, lambda: network.send_app_message(0, 1, (0, 0)))
        engine.run()
        assert len(delivered) == 3  # the cross-cut send at t=15 was lost
        assert network.stats.app_blocked_by_partition == 1
        assert network.stats.partition_events == 2  # one cut, one heal

    def test_control_messages_cross_partitions(self):
        """The coordinated baselines assume a reliable control plane."""
        schedule = PartitionSchedule.of([(0.0, 50.0, ((0,),))])
        engine = SimulationEngine(seed=0)
        network = Network(engine, NetworkConfig(partitions=schedule))
        controls = []
        network.on_control_delivery(lambda s, r, p: controls.append((s, r)))
        network.send_control_message(0, 1, "marker")
        engine.run()
        assert controls == [(0, 1)]

    def test_partitioned_run_recovers_and_heals(self):
        result = _run(
            NetworkConfig(
                partitions=PartitionSchedule.of([(20.0, 40.0, ((0, 1),))])
            ),
            seed=9,
        )
        assert result.messages_blocked_by_partition > 0
        assert result.all_audits_safe


class TestFifoDiscipline:
    def test_fifo_preserves_per_link_send_order(self):
        engine = SimulationEngine(seed=7)
        network = Network(
            engine, NetworkConfig(base_latency=1.0, jitter=50.0, fifo=True)
        )
        order = []
        network.on_app_delivery(lambda m: order.append(m.message_id))
        for _ in range(20):
            network.send_app_message(0, 1, (0, 0))
        engine.run()
        assert order == sorted(order)

    def test_non_fifo_reorders_under_heavy_jitter(self):
        engine = SimulationEngine(seed=7)
        network = Network(engine, NetworkConfig(base_latency=1.0, jitter=50.0))
        order = []
        network.on_app_delivery(lambda m: order.append(m.message_id))
        for _ in range(20):
            network.send_app_message(0, 1, (0, 0))
        engine.run()
        assert order != sorted(order)


class TestDescribeAndMappings:
    @pytest.mark.parametrize(
        "channel",
        [
            UniformChannel(base_latency=2.0, jitter=0.25, drop_probability=0.1),
            GilbertElliottChannel(loss_bad=0.7, p_bad_to_good=0.4),
            DuplicatingChannel(
                channel=GilbertElliottChannel(), duplicate_probability=0.3, copies=4
            ),
            LatencyMatrixChannel.of([[0.0, 2.0], [3.0, 0.0]], jitter=0.1),
        ],
    )
    def test_channel_describe_round_trips(self, channel):
        assert channel_from_mapping(channel.describe()) == channel

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            channel_from_mapping({"kind": "quantum"})
        with pytest.raises(ValueError):
            channel_from_mapping({"base_latency": 1.0})
        with pytest.raises(ValueError):
            channel_from_mapping({"kind": "uniform", "warp": 9})

    def test_default_network_describe_keeps_v1_shape(self):
        """Fault-model keys must not leak into default descriptions: cell ids
        and trace headers of pre-fault-model studies depend on this shape."""
        assert NetworkConfig().describe() == {
            "base_latency": 1.0,
            "jitter": 0.5,
            "drop_probability": 0.0,
        }

    def test_network_config_describe_round_trips(self):
        config = NetworkConfig(
            channel=GilbertElliottChannel(loss_bad=0.9),
            partitions=PartitionSchedule.of([(5.0, 9.0, ((0, 2),))]),
            fifo=True,
        )
        rebuilt = network_config_from_mapping(config.describe())
        assert rebuilt == config

    def test_network_config_from_mapping_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            network_config_from_mapping({"bandwidth": 10})

    def test_register_channel_requires_own_kind(self):
        class Nameless(UniformChannel):
            pass

        with pytest.raises(ValueError):
            register_channel(Nameless)
        with pytest.raises(TypeError):
            register_channel(dict)
        assert "uniform" in available_channels()

    def test_models_are_hashable_axis_entries(self):
        axis = (
            NetworkConfig(),
            NetworkConfig(channel=GilbertElliottChannel()),
            NetworkConfig(fifo=True),
        )
        assert len(set(axis)) == 3

    def test_channel_model_is_abstract(self):
        with pytest.raises(TypeError):
            ChannelModel()  # type: ignore[abstract]
