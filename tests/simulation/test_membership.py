"""Dynamic membership: join/leave through the whole stack.

Covers the membership event model (schedules, specs, the mutable view),
the runner semantics (dormant joiners, permanent departure, crashes
interleaved with membership churn), the obsolescence consequence the paper's
theory dictates — a departed process's checkpoints are garbage everywhere —
and the v2 trace extension (``j``/``l`` records, membership header,
backward compatibility of membership-free traces).
"""

import pytest

from repro.ccp.incremental import CheckpointKnowledgeTracker
from repro.membership import (
    MembershipError,
    MembershipSchedule,
    MembershipSpec,
    MembershipView,
)
from repro.simulation.channels import LatencyMatrixChannel
from repro.simulation.engine import SimulationEngine
from repro.simulation.failures import FailureSchedule
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.runner import (
    SimulationConfig,
    SimulationRunner,
    run_simulation,
)
from repro.simulation.trace import TraceRecorder
from repro.simulation.workloads import UniformRandomWorkload
from repro.traceio.reader import TraceReader, verify_trace
from repro.traceio.writer import TraceWriter


def _dynamic_config(**overrides) -> SimulationConfig:
    """The acceptance shape: capacity 5, pid 4 joins at 20, pid 1 leaves at 60."""
    defaults = dict(
        num_processes=5,
        duration=100.0,
        workload=UniformRandomWorkload(mean_message_gap=2.0, mean_checkpoint_gap=8.0),
        collector="rdt-lgc",
        seed=7,
        audit="full",
        membership=MembershipSchedule.of(joins=[(20.0, 4)], leaves=[(60.0, 1)]),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestMembershipSchedule:
    def test_static_is_falsy_and_every_pid_is_initial(self):
        schedule = MembershipSchedule.static()
        assert not schedule
        assert schedule.initial_members(3) == frozenset({0, 1, 2})

    def test_joiners_are_dormant_at_start(self):
        schedule = MembershipSchedule.of(joins=[(10.0, 2)])
        assert schedule.initial_members(3) == frozenset({0, 1})
        assert schedule.joining_pids == frozenset({2})

    def test_duplicate_events_rejected(self):
        with pytest.raises(MembershipError, match="more than one join"):
            MembershipSchedule.of(joins=[(1.0, 0), (2.0, 0)])
        with pytest.raises(MembershipError, match="more than one leave"):
            MembershipSchedule.of(leaves=[(1.0, 0), (2.0, 0)])

    def test_leave_before_join_rejected(self):
        with pytest.raises(MembershipError, match="leaves at 5.0"):
            MembershipSchedule.of(joins=[(10.0, 1)], leaves=[(5.0, 1)])

    def test_capacity_validation_names_pid(self):
        schedule = MembershipSchedule.of(joins=[(10.0, 7)])
        with pytest.raises(MembershipError, match="process 7.*only 4 processes"):
            schedule.validate_for(4)

    def test_describe_round_trips(self):
        schedule = MembershipSchedule.of(joins=[(20.0, 4)], leaves=[(60.0, 1)])
        assert MembershipSchedule.from_description(schedule.describe()) == schedule

    def test_spec_label_is_deterministic(self):
        spec = MembershipSpec.of(joins=[(20.0, 4)], leaves=[(60.0, 1)])
        assert spec.label() == "membership(join=4@20.0,leave=1@60.0)"
        assert not spec.is_static()
        assert MembershipSpec.static().is_static()


class TestMembershipView:
    def test_join_leave_lifecycle(self):
        view = MembershipView(3, frozenset({0, 1}))
        assert view.dormant == frozenset({2})
        view.join(2)
        assert view.members == frozenset({0, 1, 2})
        view.leave(1)
        assert view.departed == frozenset({1})
        assert not view.is_member(1)

    def test_double_join_and_departed_rejoin_rejected(self):
        view = MembershipView(2)
        with pytest.raises(MembershipError):
            view.join(0)  # already a member
        view.leave(0)
        with pytest.raises(MembershipError):
            view.join(0)  # departure is permanent

    def test_leave_of_dormant_pid_rejected(self):
        view = MembershipView(2, frozenset({0}))
        with pytest.raises(MembershipError):
            view.leave(1)


class TestRunnerMembership:
    def test_acceptance_join_and_leave_end_to_end(self, tmp_path):
        """The feature's acceptance cell: one join, one leave, full audits,
        a replay-verified trace, and zero checkpoints of the departed pid."""
        path = str(tmp_path / "churn.trace.jsonl")
        config = _dynamic_config(trace_path=path)
        runner = SimulationRunner(config)
        result = runner.run()
        assert result.all_audits_safe and result.all_audits_optimal
        # Every checkpoint of the departed process is garbage by run end.
        assert result.retained_final[1] == 0
        # The joiner participated: it stored s_4^0 at join time.
        assert result.retained_final[4] >= 1
        assert verify_trace(path) == []
        replayed = TraceReader(path).replay()
        assert replayed.recorder.membership.members == frozenset({0, 2, 3, 4})
        assert replayed.recorder.departed == frozenset({1})
        assert replayed.recorder.ccp().departed == frozenset({1})

    def test_departed_garbage_differential_across_collectors(self):
        """Every study collector eliminates the departed pid's checkpoints."""
        from repro.scenarios.experiments import STUDY_COLLECTORS

        for name, options in STUDY_COLLECTORS:
            config = _dynamic_config(
                collector=name, collector_options=dict(options), audit="safety"
            )
            result = run_simulation(config)
            assert result.retained_final[1] == 0, (
                f"collector {name!r} kept {result.retained_final[1]} "
                f"checkpoint(s) of the departed process"
            )
            assert result.all_audits_safe, f"collector {name!r} went unsafe"

    def test_crash_interleaved_with_membership_churn(self):
        """Crashes before the leave, after the join, and of the departed pid."""
        config = _dynamic_config(
            failures=FailureSchedule.of([(40.0, 1), (50.0, 4), (80.0, 1)]),
        )
        result = run_simulation(config)
        assert result.all_audits_safe and result.all_audits_optimal
        # The 80.0 crash names the departed pid 1: silently skipped.
        assert len(result.recoveries) == 2
        assert result.retained_final[1] == 0

    def test_join_at_recovery_instant(self):
        """A join scheduled at the same instant as a crash's recovery session."""
        config = _dynamic_config(
            failures=FailureSchedule.of([(20.0, 0)]),
        )
        result = run_simulation(config)
        assert result.all_audits_safe and result.all_audits_optimal
        assert len(result.recoveries) == 1

    def test_leave_with_undelivered_messages_in_flight(self):
        """Messages to/from the leaver still in flight are discarded, and the
        run stays analysable (the receives simply never happen)."""
        # Every link to/from pid 1 is 30x slow, so traffic touching the
        # leaver is almost surely in flight at its departure time.
        matrix = [
            [30.0 if 1 in (a, b) and a != b else 1.0 for b in range(5)]
            for a in range(5)
        ]
        config = _dynamic_config(
            network=NetworkConfig(channel=LatencyMatrixChannel.of(matrix)),
        )
        result = run_simulation(config)
        assert result.all_audits_safe and result.all_audits_optimal
        assert result.retained_final[1] == 0

    def test_single_process_degenerate_run(self):
        """num_processes=1: no peers, no messages — the grid's smallest cell."""
        config = SimulationConfig(
            num_processes=1,
            duration=30.0,
            workload=UniformRandomWorkload(mean_checkpoint_gap=5.0),
            audit="full",
            seed=1,
        )
        result = run_simulation(config)
        assert result.messages_sent == 0
        assert result.basic_checkpoints >= 2
        assert result.all_audits_safe and result.all_audits_optimal

    def test_dynamic_membership_rejected_on_live_backend(self):
        with pytest.raises(ValueError, match="'sim' backend only"):
            _dynamic_config(backend="live")

    def test_membership_event_outside_duration_rejected(self):
        with pytest.raises(ValueError, match="outside the run duration"):
            _dynamic_config(duration=50.0)

    def test_incremental_analyses_agree_under_churn(self):
        """The delta-maintained substrate must match the classic recompute
        across joins (matrix growth) and leaves (departed exclusion)."""
        config = _dynamic_config(incremental_analyses="check")
        result = run_simulation(config)
        assert result.all_audits_safe and result.all_audits_optimal


class TestNetworkDeparture:
    def test_drop_in_flight_for_reclaims_custody_copies(self):
        """Controller-held (custody) copies touching the leaver are reclaimed."""

        class RecordingController:
            def __init__(self):
                self.in_custody = []
                self.discarded = []

            def on_copy_in_flight(self, delivery_id, message, delivery_time):
                self.in_custody.append(delivery_id)

            def on_copies_discarded(self, delivery_ids):
                self.discarded.extend(delivery_ids)

        engine = SimulationEngine(seed=1)
        network = Network(engine, NetworkConfig(base_latency=5.0, jitter=0.0))
        controller = RecordingController()
        network.attach_controller(controller)
        network.on_app_delivery(lambda m: None)
        network.send_app_message(0, 1, (0, 0))  # to the leaver
        network.send_app_message(1, 2, (0, 0))  # from the leaver
        network.send_app_message(2, 3, (0, 0))  # unrelated
        dropped = network.drop_in_flight_for(1)
        assert dropped == 2
        assert sorted(controller.discarded) == sorted(controller.in_custody[:2])
        assert network.stats.app_discarded_by_departure == 2
        assert network.in_flight_count() == 1

    def test_ensure_capacity_revalidates_fault_model(self):
        """A join past the latency matrix's size must fail loudly, naming
        the matrix dimension and the unprovisioned pid."""
        engine = SimulationEngine(seed=1)
        matrix = [[1.0, 2.0], [2.0, 1.0]]
        network = Network(
            engine, NetworkConfig(channel=LatencyMatrixChannel.of(matrix))
        )
        network.ensure_capacity(2)  # fine: the matrix covers pids 0..1
        with pytest.raises(ValueError, match="2x2.*pid 2 has no latency row"):
            network.ensure_capacity(3)


class TestRecorderMembership:
    def test_events_from_non_members_rejected(self):
        recorder = TraceRecorder(3, initial_members=frozenset({0, 1}))
        with pytest.raises(MembershipError, match="dormant"):
            recorder.record_checkpoint(2, 0, (0, -1, -1), forced=False, time=1.0)
        recorder.record_join(2, 5.0)
        recorder.record_checkpoint(2, 0, (-1, -1, 0), forced=False, time=5.0)
        recorder.record_leave(2, 9.0)
        with pytest.raises(MembershipError, match="departed"):
            recorder.record_send(2, 0, 0, 10.0)

    def test_join_beyond_capacity_grows_structures(self):
        recorder = TraceRecorder(2, initial_members=frozenset({0, 1}))
        recorder.record_checkpoint(0, 0, (0, -1), forced=False, time=0.0)
        recorder.record_checkpoint(1, 0, (-1, 0), forced=False, time=0.0)
        recorder.record_join(2, 5.0)
        assert recorder.num_processes == 3
        recorder.record_checkpoint(2, 0, (-1, -1, 0), forced=False, time=5.0)
        ccp = recorder.ccp()
        assert ccp.num_processes == 3

    def test_tracker_out_of_range_pid_raises_membership_error(self):
        """Regression: fixed n-by-n matrices used to fail with IndexError."""
        tracker = CheckpointKnowledgeTracker(2)
        with pytest.raises(MembershipError, match="outside the tracked capacity"):
            tracker.note_send(0, sender=5)
        tracker.grow(3)
        tracker.note_send(0, sender=2)
        with pytest.raises(MembershipError):
            tracker.grow(2)  # shrinking is not a thing


class TestTraceMembershipRecords:
    def test_membership_free_trace_has_no_membership_header(self, tmp_path):
        """Static runs keep their exact pre-membership artifact shape."""
        path = str(tmp_path / "static.trace.jsonl")
        config = SimulationConfig(
            num_processes=3,
            duration=30.0,
            workload=UniformRandomWorkload(),
            seed=2,
            trace_path=path,
        )
        run_simulation(config)
        replayed = TraceReader(path).replay()
        assert "membership" not in replayed.header
        assert replayed.recorder.departed == frozenset()
        assert verify_trace(path) == []

    def test_join_leave_records_round_trip(self, tmp_path):
        path = str(tmp_path / "churn.trace.jsonl")
        config = _dynamic_config(trace_path=path, audit="off")
        run_simulation(config)
        tags = []
        import json

        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        tags = [record[0] for record in lines[1:] if isinstance(record, list)]
        assert "j" in tags and "l" in tags
        header = lines[0]
        assert ["join", 4, 20.0] in header["membership"]
        assert ["leave", 1, 60.0] in header["membership"]
        replayed = TraceReader(path).replay()
        assert replayed.recorder.departed == frozenset({1})
