"""Unit tests for workload generators and failure schedules."""

import random

import pytest

from repro.simulation.failures import Crash, FailureModelSpec, FailureSchedule
from repro.simulation.workloads import (
    Action,
    ActionKind,
    ClientServerWorkload,
    GossipWorkload,
    HierarchicalWorkload,
    PipelineWorkload,
    RingWorkload,
    ScriptedWorkload,
    UniformRandomWorkload,
    Workload,
    WorstCaseWorkload,
    ZipfClientServerWorkload,
    available_workloads,
    make_workload,
)


class TestActions:
    def test_send_requires_target(self):
        with pytest.raises(ValueError):
            Action(1.0, 0, ActionKind.SEND)

    def test_actions_sort_by_time(self):
        actions = [Action(2.0, 0, ActionKind.CHECKPOINT), Action(1.0, 1, ActionKind.CHECKPOINT)]
        assert Workload._sorted(actions)[0].time == 1.0

    def test_actions_are_not_implicitly_orderable(self):
        # Dataclass ordering fell through to the ActionKind enum (TypeError)
        # whenever two actions shared (time, pid); ordering is explicit now.
        with pytest.raises(TypeError):
            Action(1.0, 0, ActionKind.CHECKPOINT) < Action(1.0, 0, ActionKind.SEND, 1)

    def test_equal_timestamp_actions_sort_deterministically(self):
        actions = [
            Action(1.0, 0, ActionKind.SEND, 2),
            Action(1.0, 0, ActionKind.CHECKPOINT),
            Action(1.0, 0, ActionKind.SEND, 1),
        ]
        expected = [
            Action(1.0, 0, ActionKind.CHECKPOINT),
            Action(1.0, 0, ActionKind.SEND, 1),
            Action(1.0, 0, ActionKind.SEND, 2),
        ]
        for seed in range(5):
            shuffled = list(actions)
            random.Random(seed).shuffle(shuffled)
            assert Workload._sorted(shuffled) == expected


class TestGeneratedWorkloads:
    @pytest.mark.parametrize(
        "workload",
        [
            UniformRandomWorkload(),
            ClientServerWorkload(),
            PipelineWorkload(),
            RingWorkload(),
            ZipfClientServerWorkload(),
            GossipWorkload(),
            HierarchicalWorkload(),
        ],
    )
    def test_actions_are_valid_and_within_duration(self, workload):
        actions = workload.generate(4, 100.0, random.Random(0))
        assert actions
        assert actions == sorted(actions, key=lambda a: (a.time, a.pid))
        for action in actions:
            assert 0.0 <= action.time < 100.0 + 2.0  # client/server replies may spill a bit
            assert 0 <= action.pid < 4
            if action.kind is ActionKind.SEND:
                assert action.target is not None and action.target != action.pid

    def test_generation_is_deterministic_per_seed(self):
        workload = UniformRandomWorkload()
        first = workload.generate(3, 50.0, random.Random(7))
        second = workload.generate(3, 50.0, random.Random(7))
        assert first == second

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            UniformRandomWorkload(mean_message_gap=0)
        with pytest.raises(ValueError):
            ClientServerWorkload(mean_request_gap=-1)
        with pytest.raises(ValueError):
            RingWorkload(period=0)
        with pytest.raises(ValueError):
            WorstCaseWorkload(round_length=0)

    def test_client_server_accepts_instant_server(self):
        # server_think_time = 0 is valid (and the error message says so).
        ClientServerWorkload(server_think_time=0.0)
        with pytest.raises(ValueError, match="non-negative"):
            ClientServerWorkload(server_think_time=-0.1)

    def test_registry_builds_workloads_by_name(self):
        assert "uniform-random" in available_workloads()
        assert "scripted" not in available_workloads()  # needs an action list
        workload = make_workload("ring", period=2.0)
        assert isinstance(workload, RingWorkload)
        with pytest.raises(KeyError):
            make_workload("no-such-workload")

    def test_register_rejects_inherited_name(self):
        from repro.simulation.workloads import register_workload

        class Shadow(UniformRandomWorkload):
            pass  # no `name` of its own -> would shadow "uniform-random"

        with pytest.raises(ValueError, match="its own `name`"):
            register_workload(Shadow)
        assert make_workload("uniform-random").__class__ is UniformRandomWorkload

    def test_client_server_needs_two_processes(self):
        with pytest.raises(ValueError):
            ClientServerWorkload().generate(1, 10.0, random.Random(0))

    def test_client_server_traffic_is_centred_on_the_server(self):
        actions = ClientServerWorkload().generate(4, 200.0, random.Random(1))
        sends = [a for a in actions if a.kind is ActionKind.SEND]
        to_server = sum(1 for a in sends if a.target == 0)
        from_server = sum(1 for a in sends if a.pid == 0)
        assert to_server > 0 and from_server > 0
        assert to_server + from_server == len(sends)


class TestTopologyWorkloads:
    def test_registered_by_name(self):
        names = available_workloads()
        for name in ("zipf-client-server", "gossip", "hierarchical"):
            assert name in names
            assert make_workload(name).name == name

    def test_zipf_traffic_is_skewed_toward_the_hot_server(self):
        workload = ZipfClientServerWorkload(num_servers=2, skew=1.5)
        actions = workload.generate(6, 400.0, random.Random(3))
        requests = [
            a for a in actions
            if a.kind is ActionKind.SEND and a.pid >= 2 and a.target in (0, 1)
        ]
        hot = sum(1 for a in requests if a.target == 0)
        assert hot > len(requests) - hot  # rank 0 gets the majority

    def test_zipf_needs_a_client(self):
        with pytest.raises(ValueError, match="2 servers plus one client"):
            ZipfClientServerWorkload(num_servers=2).generate(
                2, 50.0, random.Random(0)
            )

    def test_gossip_rounds_send_fanout_messages(self):
        workload = GossipWorkload(fanout=3, mean_round_gap=5.0)
        actions = workload.generate(5, 100.0, random.Random(1))
        sends = [a for a in actions if a.kind is ActionKind.SEND]
        by_instant = {}
        for a in sends:
            by_instant.setdefault((a.time, a.pid), set()).add(a.target)
        for (_, pid), targets in by_instant.items():
            assert len(targets) == 3
            assert pid not in targets

    def test_gossip_fanout_clamped_to_peer_count(self):
        workload = GossipWorkload(fanout=5)
        actions = workload.generate(3, 60.0, random.Random(2))
        sends = [a for a in actions if a.kind is ActionKind.SEND]
        assert sends  # 2 peers available, fanout clamps instead of raising

    def test_hierarchical_traffic_is_mostly_local(self):
        workload = HierarchicalWorkload(region_size=3, local_bias=0.9)
        actions = workload.generate(6, 400.0, random.Random(4))
        sends = [a for a in actions if a.kind is ActionKind.SEND]
        local = sum(
            1 for a in sends
            if workload.region_of(a.pid, 6) == workload.region_of(a.target, 6)
        )
        assert local / len(sends) > 0.7

    def test_hierarchical_last_region_absorbs_tail(self):
        workload = HierarchicalWorkload(region_size=3)
        assert [workload.region_of(pid, 7) for pid in range(7)] == [
            0, 0, 0, 1, 1, 1, 1,
        ]

    def test_topology_parameter_validation(self):
        with pytest.raises(ValueError):
            ZipfClientServerWorkload(num_servers=0)
        with pytest.raises(ValueError):
            ZipfClientServerWorkload(skew=0.0)
        with pytest.raises(ValueError):
            GossipWorkload(fanout=0)
        with pytest.raises(ValueError):
            HierarchicalWorkload(local_bias=1.5)
        with pytest.raises(ValueError):
            HierarchicalWorkload(region_size=0)


class TestWorstCaseWorkload:
    def test_schedule_shape(self):
        workload = WorstCaseWorkload(round_length=10.0)
        actions = workload.generate(3, workload.required_duration(3), random.Random(0))
        checkpoints = [a for a in actions if a.kind is ActionKind.CHECKPOINT]
        sends = [a for a in actions if a.kind is ActionKind.SEND]
        # n rounds of n checkpoints plus the final round of n checkpoints.
        assert len(checkpoints) == 3 * 3 + 3
        # Each round one broadcaster sends to the n-1 others.
        assert len(sends) == 3 * 2

    def test_required_duration_covers_all_actions(self):
        workload = WorstCaseWorkload(round_length=5.0)
        duration = workload.required_duration(4)
        actions = workload.generate(4, duration, random.Random(0))
        assert max(a.time for a in actions) <= duration


class TestScriptedWorkload:
    def test_actions_returned_sorted(self):
        scripted = ScriptedWorkload(
            [Action(5.0, 0, ActionKind.CHECKPOINT), Action(1.0, 1, ActionKind.SEND, 0)]
        )
        actions = scripted.generate(2, 10.0, random.Random(0))
        assert [a.time for a in actions] == [1.0, 5.0]

    def test_rejects_out_of_range_processes(self):
        scripted = ScriptedWorkload([Action(1.0, 5, ActionKind.CHECKPOINT)])
        with pytest.raises(ValueError):
            scripted.generate(2, 10.0, random.Random(0))


class TestFailureSchedules:
    def test_of_sorts_crashes(self):
        schedule = FailureSchedule.of([(9.0, 1), (3.0, 0)])
        assert [c.time for c in schedule] == [3.0, 9.0]
        assert len(schedule) == 2

    def test_none_is_empty(self):
        assert len(FailureSchedule.none()) == 0

    def test_random_schedule_respects_bounds(self):
        schedule = FailureSchedule.random(
            num_processes=4, duration=100.0, count=5, rng=random.Random(3)
        )
        assert len(schedule) == 5
        for crash in schedule:
            assert 0 <= crash.pid < 4
            assert 20.0 <= crash.time <= 100.0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            FailureSchedule.random(
                num_processes=2, duration=10.0, count=-1, rng=random.Random(0)
            )

    def test_invalid_duration_and_warmup_rejected(self):
        with pytest.raises(ValueError):
            FailureSchedule.random(
                num_processes=2, duration=0.0, count=1, rng=random.Random(0)
            )
        with pytest.raises(ValueError):
            FailureSchedule.random(
                num_processes=2, duration=10.0, count=1, rng=random.Random(0),
                warmup_fraction=1.0,
            )

    def test_boundary_time_draws_are_redrawn(self):
        # rng.uniform(start, duration) can return exactly `duration`, but
        # crash schedules are end-exclusive like workload actions: a crash at
        # the instant the run ends triggers a recovery no execution observes.
        class BoundaryRng(random.Random):
            def __init__(self, values):
                super().__init__(0)
                self._values = list(values)

            def uniform(self, a, b):
                return self._values.pop(0) if self._values else super().uniform(a, b)

            def randrange(self, *args, **kwargs):
                return 0

        rng = BoundaryRng([100.0, 50.0, 50.0, 60.0])  # boundary, ok, duplicate, ok
        schedule = FailureSchedule.random(
            num_processes=4, duration=100.0, count=2, rng=rng
        )
        assert [crash.time for crash in schedule] == [50.0, 60.0]
        assert all(crash.time < 100.0 for crash in schedule)

    def test_crashes_are_never_at_or_past_duration(self):
        for seed in range(25):
            schedule = FailureSchedule.random(
                num_processes=3, duration=50.0, count=4, rng=random.Random(seed)
            )
            assert all(crash.time < 50.0 for crash in schedule)

    def test_duplicate_instants_for_a_pid_are_rejected(self):
        class ConstantRng(random.Random):
            def uniform(self, a, b):
                return 30.0

            def randrange(self, *args, **kwargs):
                return 1

        with pytest.raises(RuntimeError):
            FailureSchedule.random(
                num_processes=2, duration=100.0, count=2, rng=ConstantRng(0)
            )

    def test_crash_ordering(self):
        assert Crash(1.0, 3) < Crash(2.0, 0)


class TestChurnSchedules:
    def test_every_process_churns_repeatedly(self):
        schedule = FailureSchedule.churn(
            num_processes=3,
            duration=1000.0,
            rng=random.Random(0),
            hazard_rate=0.02,
        )
        per_pid = {pid: 0 for pid in range(3)}
        for crash in schedule:
            per_pid[crash.pid] += 1
        # Mean inter-crash time 50 over 800 post-warmup seconds: every
        # process crashes many times — churn, not a one-off failure.
        assert all(count >= 3 for count in per_pid.values())

    def test_respects_bounds_and_warmup(self):
        for seed in range(10):
            schedule = FailureSchedule.churn(
                num_processes=4,
                duration=200.0,
                rng=random.Random(seed),
                hazard_rate=0.05,
                warmup_fraction=0.25,
            )
            assert all(50.0 < crash.time < 200.0 for crash in schedule)
            assert list(schedule) == sorted(schedule)

    def test_min_gap_spaces_consecutive_crashes(self):
        schedule = FailureSchedule.churn(
            num_processes=1,
            duration=2000.0,
            rng=random.Random(3),
            hazard_rate=0.5,
            min_gap=10.0,
        )
        times = [crash.time for crash in schedule]
        assert len(times) > 5
        assert all(b - a >= 10.0 for a, b in zip(times, times[1:]))

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError):
            FailureSchedule.churn(
                num_processes=2, duration=10.0, rng=rng, hazard_rate=0.0
            )
        with pytest.raises(ValueError):
            FailureSchedule.churn(
                num_processes=2, duration=0.0, rng=rng, hazard_rate=0.1
            )
        with pytest.raises(ValueError):
            FailureSchedule.churn(
                num_processes=2, duration=10.0, rng=rng, hazard_rate=0.1, min_gap=-1.0
            )
        with pytest.raises(ValueError):
            FailureSchedule.churn(
                num_processes=2,
                duration=10.0,
                rng=rng,
                hazard_rate=0.1,
                warmup_fraction=1.0,
            )


class TestFailureModelSpec:
    def test_churn_spec_materialises_a_churn_schedule(self):
        spec = FailureModelSpec.of("churn", {"hazard_rate": 0.05})
        schedule = spec.schedule(
            num_processes=3, duration=400.0, rng=random.Random(1)
        )
        assert len(schedule) > 0
        assert all(crash.time < 400.0 for crash in schedule)

    def test_crashes_spec_matches_random_schedule(self):
        spec = FailureModelSpec.of("crashes", {"count": 3})
        direct = FailureSchedule.random(
            num_processes=4, duration=100.0, count=3, rng=random.Random(7)
        )
        via_spec = spec.schedule(
            num_processes=4, duration=100.0, rng=random.Random(7)
        )
        assert via_spec == direct

    def test_zero_count_is_no_failures(self):
        spec = FailureModelSpec.of("crashes")
        assert (
            spec.schedule(num_processes=2, duration=10.0, rng=random.Random(0))
            == FailureSchedule.none()
        )

    def test_label_is_canonical(self):
        spec = FailureModelSpec.of(
            "churn", {"warmup_fraction": 0.1, "hazard_rate": 0.05}
        )
        assert spec.label() == "churn(hazard_rate=0.05,warmup_fraction=0.1)"

    def test_unknown_model_and_parameters_fail_fast(self):
        with pytest.raises(ValueError):
            FailureModelSpec.of("meteor-strike")
        with pytest.raises(ValueError):
            FailureModelSpec.of("churn", {"hazard": 0.1})
        with pytest.raises(ValueError):
            FailureModelSpec.of("churn", {"hazard_rate": -1.0})

    def test_specs_are_hashable_axis_entries(self):
        axis = (
            0,
            2,
            FailureModelSpec.of("churn", {"hazard_rate": 0.05}),
            FailureModelSpec.of("churn", {"hazard_rate": 0.1}),
        )
        assert len(set(axis)) == 4
