"""Unit tests for the discrete-event engine and the message transport."""

import pytest

from repro.simulation.channels import DuplicatingChannel, GilbertElliottChannel
from repro.simulation.engine import SimulationEngine, StopReason
from repro.simulation.network import Network, NetworkConfig


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(5.0, lambda: order.append("b"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 9.0
        assert engine.processed_events == 3

    def test_ties_break_by_scheduling_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(1.0, lambda: order.append("first"))
        engine.schedule_at(1.0, lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second"]

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(10.0, lambda: fired.append(True))
        engine.run(until=5.0)
        assert fired == []
        assert engine.now == 5.0
        assert engine.pending_events() == 1
        engine.run()
        assert fired == [True]

    def test_schedule_after_and_nested_scheduling(self):
        engine = SimulationEngine()
        times = []

        def tick():
            times.append(engine.now)
            if len(times) < 3:
                engine.schedule_after(2.0, tick)

        engine.schedule_after(1.0, tick)
        engine.run()
        assert times == [1.0, 3.0, 5.0]

    def test_scheduling_in_the_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_after(-1.0, lambda: None)

    def test_max_events_and_step(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda: None)
        engine.run(max_events=2)
        assert engine.processed_events == 2
        assert engine.step()
        assert not engine.step()


class TestEngineStopSemantics:
    """The explicit stop/advance contract of SimulationEngine.run."""

    def test_exhausted_advances_to_until(self):
        engine = SimulationEngine()
        engine.schedule_at(2.0, lambda: None)
        assert engine.run(until=10.0) is StopReason.EXHAUSTED
        assert engine.now == 10.0

    def test_exhausted_without_until_keeps_last_event_time(self):
        engine = SimulationEngine()
        engine.schedule_at(2.0, lambda: None)
        assert engine.run() is StopReason.EXHAUSTED
        assert engine.now == 2.0

    def test_until_reported_when_events_remain_beyond_it(self):
        engine = SimulationEngine()
        engine.schedule_at(2.0, lambda: None)
        engine.schedule_at(8.0, lambda: None)
        assert engine.run(until=5.0) is StopReason.UNTIL
        assert engine.now == 5.0
        assert engine.pending_events() == 1

    def test_max_events_stop_does_not_advance_to_until(self):
        # The documented gotcha: stopping on the event budget leaves the clock
        # strictly before `until` because events are still pending there;
        # jumping to `until` would misorder the next run() call.
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda: None)
        assert engine.run(until=10.0, max_events=2) is StopReason.MAX_EVENTS
        assert engine.now == 2.0
        assert engine.pending_events() == 1
        # Resuming processes the leftover event and then reaches `until`.
        assert engine.run(until=10.0) is StopReason.EXHAUSTED
        assert engine.now == 10.0

    def test_until_in_the_past_never_rewinds_the_clock(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        assert engine.now == 5.0
        engine.schedule_at(6.0, lambda: None)
        assert engine.run(until=3.0) is StopReason.UNTIL
        assert engine.now == 5.0  # unchanged, not rewound to 3.0
        engine.run()
        assert engine.now == 6.0

    def test_until_wins_when_budget_spent_and_next_event_is_beyond_until(self):
        engine = SimulationEngine()
        engine.schedule_at(1.0, lambda: None)
        engine.schedule_at(9.0, lambda: None)
        # The budget is spent, but everything at or before `until` was done,
        # so the caller's request to advance to `until` is honoured.
        assert engine.run(until=5.0, max_events=1) is StopReason.UNTIL
        assert engine.now == 5.0

    def test_resumed_runs_reach_until_in_bounded_steps(self):
        engine = SimulationEngine()
        fired = []
        for t in (1.0, 2.0, 3.0, 4.0):
            engine.schedule_at(t, lambda t=t: fired.append(t))
        reasons = []
        while True:
            reason = engine.run(until=6.0, max_events=1)
            reasons.append(reason)
            if reason is not StopReason.MAX_EVENTS:
                break
        assert fired == [1.0, 2.0, 3.0, 4.0]
        assert engine.now == 6.0
        assert reasons[-1] is StopReason.EXHAUSTED
        assert all(r is StopReason.MAX_EVENTS for r in reasons[:-1])

    def test_seeded_rng_is_deterministic(self):
        a = SimulationEngine(seed=42).rng.random()
        b = SimulationEngine(seed=42).rng.random()
        assert a == b


class TestNetwork:
    def _build(self, **config):
        engine = SimulationEngine(seed=1)
        network = Network(engine, NetworkConfig(**config))
        delivered = []
        network.on_app_delivery(delivered.append)
        controls = []
        network.on_control_delivery(lambda s, r, p: controls.append((s, r, p)))
        return engine, network, delivered, controls

    def test_app_message_delivery(self):
        engine, network, delivered, _ = self._build(jitter=0.0)
        network.send_app_message(0, 1, (1, 0), payload="hello")
        engine.run()
        assert len(delivered) == 1
        assert delivered[0].payload == "hello"
        assert network.stats.app_delivered == 1

    def test_message_loss(self):
        engine, network, delivered, _ = self._build(drop_probability=0.999)
        for _ in range(20):
            network.send_app_message(0, 1, (0, 0))
        engine.run()
        assert network.stats.app_dropped > 0
        assert len(delivered) == network.stats.app_delivered

    def test_drop_in_flight_discards_pending_messages(self):
        engine, network, delivered, _ = self._build(base_latency=5.0, jitter=0.0)
        network.send_app_message(0, 1, (0, 0))
        assert network.in_flight_count() == 1
        assert network.drop_in_flight() == 1
        engine.run()
        assert delivered == []
        assert network.stats.app_discarded_by_recovery == 1

    def test_control_messages_are_reliable(self):
        engine, network, _, controls = self._build(drop_probability=0.9)
        for _ in range(10):
            network.send_control_message(0, 1, {"round": 1})
        engine.run()
        assert len(controls) == 10
        assert network.stats.control_delivered == 10

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(drop_probability=1.5)
        with pytest.raises(ValueError):
            NetworkConfig(base_latency=-1.0)

    def test_delivery_without_handler_fails_loudly(self):
        engine = SimulationEngine()
        network = Network(engine)
        network.send_app_message(0, 1, (0,))
        with pytest.raises(RuntimeError):
            engine.run()


class TestPerLinkDeterminism:
    """Regression tests for the per-link random streams.

    Latency/loss draws are derived per directed link from the engine seed;
    traffic (or a fault model) on one link must never perturb the draws of
    another — the same isolation the control plane always had.
    """

    @staticmethod
    def _delivery_times(config, traffic):
        """Run ``traffic(network, engine)`` and map message_id -> arrival."""
        engine = SimulationEngine(seed=123)
        network = Network(engine, config)
        arrivals = {}
        network.on_app_delivery(
            lambda m: arrivals.setdefault((m.sender, m.receiver, m.message_id), engine.now)
        )
        network.on_duplicate_delivery(lambda m: None)
        network.on_control_delivery(lambda s, r, p: None)
        traffic(network, engine)
        engine.run()
        return arrivals

    def test_extra_traffic_on_one_link_leaves_other_links_untouched(self):
        def base(network, engine):
            for _ in range(5):
                network.send_app_message(2, 3, (0, 0, 0, 0))

        def with_noise(network, engine):
            for _ in range(5):
                network.send_app_message(0, 1, (0, 0, 0, 0))  # extra link traffic
                network.send_app_message(2, 3, (0, 0, 0, 0))

        quiet = self._delivery_times(NetworkConfig(), base)
        noisy = self._delivery_times(NetworkConfig(), with_noise)
        quiet_23 = sorted(t for (s, r, _), t in quiet.items() if (s, r) == (2, 3))
        noisy_23 = sorted(t for (s, r, _), t in noisy.items() if (s, r) == (2, 3))
        assert quiet_23 == noisy_23

    def test_fault_model_perturbs_only_its_own_draws(self):
        """A channel model changes per-link draw *counts*; links still do not
        interfere: with bursty loss on, the surviving deliveries on (2, 3)
        are the same whether or not (0, 1) carries traffic."""
        config = NetworkConfig(channel=GilbertElliottChannel(loss_bad=0.8))

        def base(network, engine):
            for _ in range(30):
                network.send_app_message(2, 3, (0, 0, 0, 0))

        def with_noise(network, engine):
            for _ in range(30):
                network.send_app_message(0, 1, (0, 0, 0, 0))
                network.send_app_message(2, 3, (0, 0, 0, 0))

        quiet = self._delivery_times(config, base)
        noisy = self._delivery_times(config, with_noise)
        quiet_23 = sorted(t for (s, r, _), t in quiet.items() if (s, r) == (2, 3))
        noisy_23 = sorted(t for (s, r, _), t in noisy.items() if (s, r) == (2, 3))
        assert quiet_23 == noisy_23

    def test_control_traffic_does_not_perturb_app_draws(self):
        def base(network, engine):
            for _ in range(5):
                network.send_app_message(0, 1, (0, 0, 0, 0))

        def with_control(network, engine):
            for _ in range(5):
                network.send_control_message(0, 1, "gc-round")
                network.send_app_message(0, 1, (0, 0, 0, 0))

        assert sorted(self._delivery_times(NetworkConfig(), base).values()) == sorted(
            t
            for (s, r, _), t in self._delivery_times(
                NetworkConfig(), with_control
            ).items()
            if (s, r) == (0, 1)
        )


class TestDropInFlightAccounting:
    """The satellite: drop_in_flight stats cover every copy, duplicates too."""

    def test_discards_count_every_copy(self):
        engine = SimulationEngine(seed=1)
        network = Network(
            engine,
            NetworkConfig(
                base_latency=5.0,
                jitter=0.0,
                channel=DuplicatingChannel(duplicate_probability=1.0, copies=3),
            ),
        )
        network.on_app_delivery(lambda m: None)
        network.on_duplicate_delivery(lambda m: None)
        for _ in range(4):
            network.send_app_message(0, 1, (0, 0))
        assert network.stats.app_sent == 4
        assert network.in_flight_count() == 12  # 3 copies per message
        assert network.drop_in_flight() == 12
        assert network.stats.app_discarded_by_recovery == 12
        assert network.in_flight_count() == 0
        engine.run()
        # Nothing was delivered: every copy was discarded in transit.
        assert network.stats.app_delivered == 0
        assert network.stats.app_duplicates_delivered == 0

    def test_counters_reconcile_after_partial_delivery(self):
        engine = SimulationEngine(seed=1)
        network = Network(engine, NetworkConfig(base_latency=5.0, jitter=0.0))
        delivered = []
        network.on_app_delivery(delivered.append)
        network.send_app_message(0, 1, (0, 0))
        engine.run()  # first message arrives
        network.send_app_message(0, 1, (0, 0))
        discarded = network.drop_in_flight()  # second is still in transit
        assert discarded == 1
        stats = network.stats
        assert stats.app_sent == 2
        assert stats.app_delivered == len(delivered) == 1
        assert stats.app_discarded_by_recovery == 1
        assert (
            stats.app_sent
            == stats.app_delivered
            + stats.app_dropped
            + stats.app_blocked_by_partition
            + stats.app_discarded_by_recovery
        )
        # Idempotent on an empty transport.
        assert network.drop_in_flight() == 0
        assert stats.app_discarded_by_recovery == 1
