"""Unit tests for the discrete-event engine and the message transport."""

import pytest

from repro.simulation.engine import SimulationEngine
from repro.simulation.network import Network, NetworkConfig


class TestEngine:
    def test_events_run_in_time_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(5.0, lambda: order.append("b"))
        engine.schedule_at(1.0, lambda: order.append("a"))
        engine.schedule_at(9.0, lambda: order.append("c"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 9.0
        assert engine.processed_events == 3

    def test_ties_break_by_scheduling_order(self):
        engine = SimulationEngine()
        order = []
        engine.schedule_at(1.0, lambda: order.append("first"))
        engine.schedule_at(1.0, lambda: order.append("second"))
        engine.run()
        assert order == ["first", "second"]

    def test_run_until_stops_before_later_events(self):
        engine = SimulationEngine()
        fired = []
        engine.schedule_at(10.0, lambda: fired.append(True))
        engine.run(until=5.0)
        assert fired == []
        assert engine.now == 5.0
        assert engine.pending_events() == 1
        engine.run()
        assert fired == [True]

    def test_schedule_after_and_nested_scheduling(self):
        engine = SimulationEngine()
        times = []

        def tick():
            times.append(engine.now)
            if len(times) < 3:
                engine.schedule_after(2.0, tick)

        engine.schedule_after(1.0, tick)
        engine.run()
        assert times == [1.0, 3.0, 5.0]

    def test_scheduling_in_the_past_rejected(self):
        engine = SimulationEngine()
        engine.schedule_at(5.0, lambda: None)
        engine.run()
        with pytest.raises(ValueError):
            engine.schedule_at(1.0, lambda: None)
        with pytest.raises(ValueError):
            engine.schedule_after(-1.0, lambda: None)

    def test_max_events_and_step(self):
        engine = SimulationEngine()
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, lambda: None)
        engine.run(max_events=2)
        assert engine.processed_events == 2
        assert engine.step()
        assert not engine.step()

    def test_seeded_rng_is_deterministic(self):
        a = SimulationEngine(seed=42).rng.random()
        b = SimulationEngine(seed=42).rng.random()
        assert a == b


class TestNetwork:
    def _build(self, **config):
        engine = SimulationEngine(seed=1)
        network = Network(engine, NetworkConfig(**config))
        delivered = []
        network.on_app_delivery(delivered.append)
        controls = []
        network.on_control_delivery(lambda s, r, p: controls.append((s, r, p)))
        return engine, network, delivered, controls

    def test_app_message_delivery(self):
        engine, network, delivered, _ = self._build(jitter=0.0)
        network.send_app_message(0, 1, (1, 0), payload="hello")
        engine.run()
        assert len(delivered) == 1
        assert delivered[0].payload == "hello"
        assert network.stats.app_delivered == 1

    def test_message_loss(self):
        engine, network, delivered, _ = self._build(drop_probability=0.999)
        for _ in range(20):
            network.send_app_message(0, 1, (0, 0))
        engine.run()
        assert network.stats.app_dropped > 0
        assert len(delivered) == network.stats.app_delivered

    def test_drop_in_flight_discards_pending_messages(self):
        engine, network, delivered, _ = self._build(base_latency=5.0, jitter=0.0)
        network.send_app_message(0, 1, (0, 0))
        assert network.in_flight_count() == 1
        assert network.drop_in_flight() == 1
        engine.run()
        assert delivered == []
        assert network.stats.app_discarded_by_recovery == 1

    def test_control_messages_are_reliable(self):
        engine, network, _, controls = self._build(drop_probability=0.9)
        for _ in range(10):
            network.send_control_message(0, 1, {"round": 1})
        engine.run()
        assert len(controls) == 10
        assert network.stats.control_delivered == 10

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            NetworkConfig(drop_probability=1.5)
        with pytest.raises(ValueError):
            NetworkConfig(base_latency=-1.0)

    def test_delivery_without_handler_fails_loudly(self):
        engine = SimulationEngine()
        network = Network(engine)
        network.send_app_message(0, 1, (0,))
        with pytest.raises(RuntimeError):
            engine.run()
