"""Tests for the experiment runner and its result object."""

import pytest

from repro.simulation.failures import FailureSchedule
from repro.simulation.runner import SimulationConfig, SimulationRunner, run_simulation
from repro.simulation.workloads import UniformRandomWorkload


def _config(**overrides):
    defaults = dict(
        num_processes=3,
        duration=60.0,
        workload=UniformRandomWorkload(mean_message_gap=3.0, mean_checkpoint_gap=8.0),
        protocol="fdas",
        collector="rdt-lgc",
        seed=5,
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfigValidation:
    def test_invalid_process_count(self):
        with pytest.raises(ValueError):
            _config(num_processes=0)

    def test_invalid_duration(self):
        with pytest.raises(ValueError):
            _config(duration=0)

    def test_invalid_audit_mode(self):
        with pytest.raises(ValueError):
            _config(audit="sometimes")


class TestRunnerBehaviour:
    def test_runs_are_deterministic_for_a_seed(self):
        first = run_simulation(_config())
        second = run_simulation(_config())
        assert first.summary() == second.summary()
        assert first.retained_final == second.retained_final

    def test_different_seeds_differ(self):
        first = run_simulation(_config(seed=1))
        second = run_simulation(_config(seed=2))
        assert first.summary() != second.summary()

    def test_counters_are_consistent(self):
        result = run_simulation(_config())
        assert result.total_checkpoints == result.basic_checkpoints + result.forced_checkpoints
        assert result.total_stored == result.total_checkpoints
        assert result.messages_delivered <= result.messages_sent
        assert result.total_retained_final == sum(result.retained_final)
        assert 0.0 <= result.collection_ratio <= 1.0

    def test_samples_are_collected(self):
        result = run_simulation(_config(sample_interval=5.0))
        assert len(result.samples) >= 10
        assert result.peak_total_retained >= result.samples[0].total

    def test_final_ccp_only_kept_on_request(self):
        assert run_simulation(_config()).final_ccp is None
        assert run_simulation(_config(keep_final_ccp=True)).final_ccp is not None

    def test_summary_contains_headline_fields(self):
        summary = run_simulation(_config()).summary()
        for key in ("protocol", "collector", "checkpoints", "collected", "recoveries"):
            assert key in summary


class TestRunnerWithFailures:
    def test_recoveries_are_recorded(self):
        result = run_simulation(
            _config(failures=FailureSchedule.of([(30.0, 1), (45.0, 2)]), audit="full")
        )
        assert len(result.recoveries) == 2
        for record in result.recoveries:
            assert record.faulty in ((1,), (2,))
            assert record.rolled_back_processes >= 1
        assert result.all_audits_safe
        assert result.all_audits_optimal

    def test_crash_before_any_checkpoint_is_impossible_by_construction(self):
        """Every process stores s^0 at start, so even an immediate crash recovers."""
        result = run_simulation(_config(failures=FailureSchedule.of([(0.5, 0)])))
        assert len(result.recoveries) == 1

    def test_execution_continues_after_recovery(self):
        result = run_simulation(
            _config(failures=FailureSchedule.of([(20.0, 0)]), duration=80.0)
        )
        # Checkpoints keep being taken after the recovery session.
        assert result.total_checkpoints > 10

    def test_runner_exposes_nodes_and_trace(self):
        runner = SimulationRunner(_config())
        assert len(runner.nodes) == 3
        runner.run()
        assert runner.trace.log.total_events() > 0
        assert runner.engine.now <= 60.0
