"""Unit tests for the simulation node and the trace recorder."""

import pytest

from repro.ccp.checkpoint import CheckpointId
from repro.gc.rdt_lgc_collector import RdtLgcCollector
from repro.protocols.fdas import FixedDependencyAfterSendProtocol
from repro.recovery.manager import RecoveryManager
from repro.simulation.engine import SimulationEngine
from repro.simulation.network import Network, NetworkConfig
from repro.simulation.node import SimulationNode
from repro.simulation.trace import TraceRecorder
from repro.storage.stable import StableStorage
from repro.transport.sim import SimTransport


def _build_pair():
    engine = SimulationEngine(seed=0)
    network = Network(engine, NetworkConfig(jitter=0.0))
    transport = SimTransport(engine, network)
    trace = TraceRecorder(2)
    nodes = []
    for pid in range(2):
        storage = StableStorage(pid)
        nodes.append(
            SimulationNode(
                pid,
                2,
                transport=transport,
                trace=trace,
                protocol=FixedDependencyAfterSendProtocol(pid, 2),
                collector=RdtLgcCollector(pid, 2, storage),
                storage=storage,
            )
        )
    network.on_app_delivery(lambda m: nodes[m.receiver].deliver(m))
    network.on_control_delivery(lambda s, r, p: None)
    for node in nodes:
        node.start()
    return engine, network, trace, nodes


class TestNodeBasics:
    def test_start_takes_the_initial_checkpoint(self):
        _, _, _, nodes = _build_pair()
        for node in nodes:
            assert node.storage.retained_indices() == [0]
            assert node.current_dv[node.pid] == 1

    def test_send_and_deliver_update_vectors(self):
        engine, _, _, nodes = _build_pair()
        nodes[0].send_message(1)
        engine.run()
        assert nodes[1].current_dv == (1, 1)
        assert nodes[1].messages_received == 1
        assert nodes[0].messages_sent == 1

    def test_self_send_rejected(self):
        _, _, _, nodes = _build_pair()
        with pytest.raises(ValueError):
            nodes[0].send_message(0)

    def test_forced_checkpoint_taken_before_delivery(self):
        engine, _, _, nodes = _build_pair()
        nodes[1].send_message(0)          # p1 sends: its sent flag is up
        nodes[0].send_message(1)          # p0 sends new information to p1
        engine.run()
        # p1 received p0's message after having sent: FDAS forces a checkpoint,
        # stored before the receive, so it does not contain the new dependency.
        assert nodes[1].forced_checkpoints == 1
        forced = nodes[1].storage.get(1)
        assert forced.forced
        assert forced.dependency_vector[0] == 0

    def test_crashed_node_ignores_traffic(self):
        engine, _, _, nodes = _build_pair()
        nodes[1].crash()
        assert nodes[1].crashed
        nodes[1].send_message(0)
        nodes[1].take_checkpoint()
        assert nodes[1].messages_sent == 0
        assert nodes[1].storage.retained_count() == 1


class TestNodeRecovery:
    def test_apply_rollback_restores_dv_and_runs_gc(self):
        engine, network, trace, nodes = _build_pair()
        nodes[0].send_message(1)
        engine.run()
        nodes[1].take_checkpoint()
        nodes[1].take_checkpoint()
        ccp = trace.ccp(volatile_dvs={n.pid: n.current_dv for n in nodes})
        plan = RecoveryManager().plan(ccp, [1])
        directive = plan.rollback_for(1)
        assert directive is not None
        nodes[1].apply_rollback(directive.rollback_index, plan.last_interval_vector)
        assert nodes[1].rollbacks == 1
        assert not nodes[1].crashed
        assert nodes[1].current_dv[1] == directive.rollback_index + 1

    def test_apply_peer_rollback_delegates_to_collector(self):
        engine, _, _, nodes = _build_pair()
        nodes[0].send_message(1)
        engine.run()
        collector = nodes[1].collector
        assert collector.uc_view()[0] == 0
        # p0 restarts far ahead of what p1 knows: UC[0] is released; the
        # checkpoint itself survives because it is still p1's last stable one.
        assert nodes[1].apply_peer_rollback((5, nodes[1].current_dv[1])) == []
        assert collector.uc_view()[0] is None


class TestTraceRecorder:
    def test_trace_builds_a_ccp_matching_the_run(self):
        engine, _, trace, nodes = _build_pair()
        nodes[0].send_message(1)
        engine.run()
        nodes[1].take_checkpoint()
        ccp = trace.ccp(volatile_dvs={n.pid: n.current_dv for n in nodes})
        assert ccp.last_stable(1) == 1
        assert ccp.checkpoint(CheckpointId(1, 1)).dependency_vector == (1, 1)
        assert len(ccp.messages()) == 1

    def test_receive_of_unknown_message_is_ignored(self):
        trace = TraceRecorder(2)
        trace.record_receive(99, 1.0)  # no exception

    def test_apply_recovery_truncates_history(self):
        engine, _, trace, nodes = _build_pair()
        nodes[0].send_message(1)
        engine.run()
        nodes[1].take_checkpoint()
        nodes[1].take_checkpoint()
        ccp = trace.ccp(volatile_dvs={n.pid: n.current_dv for n in nodes})
        plan = RecoveryManager().plan(ccp, [1])
        trace.apply_recovery(plan)
        truncated = trace.ccp()
        assert truncated.last_stable(1) == plan.recovery_line.indices[1]
        # Checkpoints rolled back are forgotten by the recorder.
        assert all(
            cid.index <= plan.recovery_line.indices[1]
            for cid in trace.recorded_checkpoint_dvs()
            if cid.pid == 1
        )

    def test_apply_recovery_rejects_unknown_checkpoint(self):
        trace = TraceRecorder(1)
        trace.record_checkpoint(0, 0, (0,), forced=False, time=0.0)
        from repro.ccp.consistency import GlobalCheckpoint
        from repro.recovery.rollback_plan import ProcessRollback, RollbackPlan

        bogus = RollbackPlan(
            faulty=(0,),
            recovery_line=GlobalCheckpoint((3,)),
            rollbacks=(ProcessRollback(0, 3),),
            last_interval_vector=(4,),
        )
        with pytest.raises(RuntimeError):
            trace.apply_recovery(bogus)
