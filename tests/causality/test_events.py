"""Unit tests for the event log substrate."""

import pytest

from repro.causality.events import Event, EventId, EventKind, EventLog


class TestEvent:
    def test_send_requires_message_id(self):
        with pytest.raises(ValueError):
            Event(pid=0, seq=0, kind=EventKind.SEND)

    def test_receive_requires_message_id(self):
        with pytest.raises(ValueError):
            Event(pid=0, seq=0, kind=EventKind.RECEIVE)

    def test_checkpoint_requires_index(self):
        with pytest.raises(ValueError):
            Event(pid=0, seq=0, kind=EventKind.CHECKPOINT)

    def test_event_id_roundtrip(self):
        event = Event(pid=2, seq=5, kind=EventKind.INTERNAL)
        assert event.event_id == EventId(2, 5)

    def test_is_checkpoint(self):
        event = Event(pid=0, seq=0, kind=EventKind.CHECKPOINT, checkpoint_index=0)
        assert event.is_checkpoint()
        assert not Event(pid=0, seq=1, kind=EventKind.INTERNAL).is_checkpoint()


class TestEventLogConstruction:
    def test_requires_at_least_one_process(self):
        with pytest.raises(ValueError):
            EventLog(0)

    def test_add_internal_assigns_sequence_numbers(self):
        log = EventLog(2)
        first = log.add_internal(0)
        second = log.add_internal(0)
        assert (first.seq, second.seq) == (0, 1)

    def test_add_checkpoint_enforces_contiguous_indices(self):
        log = EventLog(1)
        log.add_checkpoint(0, 0)
        with pytest.raises(ValueError):
            log.add_checkpoint(0, 2)

    def test_checkpoint_indices_start_at_zero(self):
        log = EventLog(1)
        with pytest.raises(ValueError):
            log.add_checkpoint(0, 1)

    def test_send_to_unknown_process_rejected(self):
        log = EventLog(2)
        with pytest.raises(ValueError):
            log.add_send(0, 5)

    def test_send_and_receive_round_trip(self):
        log = EventLog(2)
        _, message = log.add_send(0, 1)
        assert not message.delivered
        log.add_receive(message.message_id)
        assert log.message(message.message_id).delivered

    def test_receive_of_unknown_message_rejected(self):
        log = EventLog(2)
        with pytest.raises(ValueError):
            log.add_receive(42)

    def test_double_receive_rejected(self):
        log = EventLog(2)
        _, message = log.add_send(0, 1)
        log.add_receive(message.message_id)
        with pytest.raises(ValueError):
            log.add_receive(message.message_id)

    def test_duplicate_message_id_rejected(self):
        log = EventLog(2)
        log.add_send(0, 1, message_id=7)
        with pytest.raises(ValueError):
            log.add_send(1, 0, message_id=7)

    def test_explicit_message_ids_do_not_collide_with_auto_ids(self):
        log = EventLog(2)
        log.add_send(0, 1, message_id=3)
        _, auto = log.add_send(0, 1)
        assert auto.message_id == 4


class TestEventLogQueries:
    def _sample_log(self) -> EventLog:
        log = EventLog(3)
        for pid in range(3):
            log.add_checkpoint(pid, 0)
        _, m = log.add_send(0, 1)
        log.add_receive(m.message_id)
        log.add_checkpoint(1, 1)
        log.add_send(2, 0)  # never received
        return log

    def test_total_events(self):
        log = self._sample_log()
        assert log.total_events() == 7

    def test_delivered_messages_excludes_in_transit(self):
        log = self._sample_log()
        assert len(log.messages()) == 2
        assert len(log.delivered_messages()) == 1

    def test_history_last_checkpoint_index(self):
        log = self._sample_log()
        assert log.history(1).last_checkpoint_index() == 1
        assert log.history(2).last_checkpoint_index() == 0

    def test_event_lookup(self):
        log = self._sample_log()
        event = log.event(EventId(1, 1))
        assert event.kind is EventKind.RECEIVE

    def test_history_rejects_foreign_events(self):
        log = EventLog(2)
        foreign = Event(pid=1, seq=0, kind=EventKind.INTERNAL)
        with pytest.raises(ValueError):
            log.history(0).append(foreign)


class TestEventLogPrefix:
    def test_prefix_drops_receives_of_dropped_sends_gracefully(self):
        log = EventLog(2)
        log.add_checkpoint(0, 0)
        log.add_checkpoint(1, 0)
        _, m = log.add_send(0, 1)
        log.add_receive(m.message_id)
        # Keep the receive but drop the send: the receive is replaced by an
        # internal placeholder so per-process event counts are preserved.
        sub = log.prefix([1, 2])
        assert sub.total_events() == 3
        assert len(sub.delivered_messages()) == 0

    def test_prefix_preserves_consistent_cut(self):
        log = EventLog(2)
        log.add_checkpoint(0, 0)
        log.add_checkpoint(1, 0)
        _, m = log.add_send(0, 1)
        log.add_receive(m.message_id)
        log.add_checkpoint(1, 1)
        sub = log.prefix([2, 3])
        assert sub.total_events() == 5
        assert len(sub.delivered_messages()) == 1
        assert sub.history(1).last_checkpoint_index() == 1

    def test_prefix_validates_lengths(self):
        log = EventLog(2)
        with pytest.raises(ValueError):
            log.prefix([1])
        with pytest.raises(ValueError):
            log.prefix([5, 0])
