"""Unit and property tests for vector clocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.causality.vector_clock import VectorClock


class TestVectorClockBasics:
    def test_zeros(self):
        clock = VectorClock.zeros(3)
        assert clock.as_tuple() == (0, 0, 0)

    def test_requires_entries(self):
        with pytest.raises(ValueError):
            VectorClock([])

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            VectorClock([1, -1])

    def test_tick_and_merge(self):
        clock = VectorClock.zeros(3)
        clock.tick(1)
        clock.merge([2, 0, 1])
        assert clock.as_tuple() == (2, 1, 1)

    def test_merge_size_mismatch(self):
        with pytest.raises(ValueError):
            VectorClock.zeros(2).merge([1, 2, 3])

    def test_setitem_rejects_negative(self):
        clock = VectorClock.zeros(2)
        with pytest.raises(ValueError):
            clock[0] = -1

    def test_copy_is_independent(self):
        clock = VectorClock([1, 2])
        other = clock.copy()
        other.tick(0)
        assert clock.as_tuple() == (1, 2)

    def test_equality_and_hash(self):
        assert VectorClock([1, 2]) == VectorClock([1, 2])
        assert hash(VectorClock([1, 2])) == hash(VectorClock([1, 2]))
        assert VectorClock([1, 2]) != VectorClock([2, 1])


class TestVectorClockOrder:
    def test_happened_before_strict(self):
        earlier = VectorClock([1, 0])
        later = VectorClock([1, 1])
        assert earlier.happened_before(later)
        assert not later.happened_before(earlier)
        assert not earlier.happened_before(earlier)

    def test_concurrent(self):
        a = VectorClock([1, 0])
        b = VectorClock([0, 1])
        assert a.concurrent_with(b)
        assert b.concurrent_with(a)

    def test_comparison_size_mismatch(self):
        with pytest.raises(ValueError):
            VectorClock([1]).happened_before(VectorClock([1, 2]))


entry_lists = st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=6)


class TestVectorClockProperties:
    @given(entry_lists)
    def test_clock_never_precedes_itself(self, entries):
        clock = VectorClock(entries)
        assert not clock.happened_before(clock)

    @given(st.integers(1, 6).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 20), min_size=n, max_size=n),
            st.lists(st.integers(0, 20), min_size=n, max_size=n),
        )
    ))
    def test_antisymmetry(self, pair):
        a, b = VectorClock(pair[0]), VectorClock(pair[1])
        assert not (a.happened_before(b) and b.happened_before(a))

    @given(st.integers(1, 5).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 10), min_size=n, max_size=n),
            st.lists(st.integers(0, 10), min_size=n, max_size=n),
            st.lists(st.integers(0, 10), min_size=n, max_size=n),
        )
    ))
    def test_transitivity(self, triple):
        a, b, c = (VectorClock(t) for t in triple)
        if a.happened_before(b) and b.happened_before(c):
            assert a.happened_before(c)

    @given(st.integers(1, 6).flatmap(
        lambda n: st.tuples(
            st.lists(st.integers(0, 20), min_size=n, max_size=n),
            st.lists(st.integers(0, 20), min_size=n, max_size=n),
        )
    ))
    def test_merge_is_least_upper_bound(self, pair):
        a, b = VectorClock(pair[0]), VectorClock(pair[1])
        merged = a.copy()
        merged.merge(b.as_tuple())
        assert merged.dominates(a)
        assert merged.dominates(b)
        assert all(m == max(x, y) for m, x, y in zip(merged, a, b))
