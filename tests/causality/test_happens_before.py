"""Tests for the happened-before oracle (Definition 1)."""

import pytest

from repro.causality.events import EventId, EventLog
from repro.causality.happens_before import CausalOrder


def _two_process_log() -> EventLog:
    log = EventLog(2)
    log.add_checkpoint(0, 0)
    log.add_checkpoint(1, 0)
    _, m1 = log.add_send(0, 1)
    log.add_receive(m1.message_id)
    log.add_checkpoint(1, 1)
    _, m2 = log.add_send(1, 0)
    log.add_receive(m2.message_id)
    return log


class TestCausalOrder:
    def test_program_order(self):
        order = CausalOrder(_two_process_log())
        assert order.precedes(EventId(0, 0), EventId(0, 1))
        assert not order.precedes(EventId(0, 1), EventId(0, 0))

    def test_message_order(self):
        order = CausalOrder(_two_process_log())
        # send of m1 is event (0,1); receive is (1,1)
        assert order.precedes(EventId(0, 1), EventId(1, 1))

    def test_transitivity_through_messages(self):
        order = CausalOrder(_two_process_log())
        # p0's initial checkpoint precedes p1's second checkpoint via m1
        assert order.precedes(EventId(0, 0), EventId(1, 2))
        # and p1's send of m2 precedes p0's receive of it
        assert order.precedes(EventId(1, 3), EventId(0, 2))

    def test_no_self_precedence(self):
        order = CausalOrder(_two_process_log())
        event = EventId(0, 0)
        assert not order.precedes(event, event)

    def test_concurrency(self):
        order = CausalOrder(_two_process_log())
        assert order.concurrent(EventId(0, 0), EventId(1, 0))

    def test_causal_past(self):
        log = _two_process_log()
        order = CausalOrder(log)
        past = set(order.causal_past(EventId(1, 2)))
        assert EventId(0, 0) in past
        assert EventId(0, 1) in past
        assert EventId(1, 0) in past
        assert EventId(0, 2) not in past

    def test_latest_checkpoint_known(self):
        log = _two_process_log()
        order = CausalOrder(log)
        # At p1's checkpoint 1 (event (1,2)), the latest checkpoint of p0 known is 0.
        assert order.latest_checkpoint_known(EventId(1, 2), 0) == 0
        # At p0's receive of m2, the latest known checkpoint of p1 is 1.
        assert order.latest_checkpoint_known(EventId(0, 2), 1) == 1

    def test_unreplayable_log_rejected(self):
        log = EventLog(2)
        # Hand-craft a receive whose send is not replayable by erasing the
        # sender's history after the fact.
        _, m = log.add_send(0, 1)
        log.add_receive(m.message_id)
        log.history(0).events.clear()
        with pytest.raises(ValueError):
            CausalOrder(log)

    def test_timestamps_match_vector_clock_semantics(self):
        log = _two_process_log()
        order = CausalOrder(log)
        for first in log.events():
            for second in log.events():
                if first.event_id == second.event_id:
                    continue
                expected = order.timestamp(first).happened_before(
                    order.timestamp(second)
                ) or (
                    first.pid == second.pid and first.seq < second.seq
                )
                assert order.precedes(first, second) == expected
