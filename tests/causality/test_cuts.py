"""Tests for cuts and consistent cuts (Definition 2)."""

import pytest

from repro.causality.cuts import Cut, latest_consistent_cut
from repro.causality.events import EventLog


def _log_with_message() -> EventLog:
    log = EventLog(2)
    log.add_checkpoint(0, 0)
    log.add_checkpoint(1, 0)
    _, m = log.add_send(0, 1)
    log.add_receive(m.message_id)
    log.add_checkpoint(1, 1)
    return log


class TestCut:
    def test_full_cut_is_consistent(self):
        log = _log_with_message()
        assert Cut.full(log).is_consistent(log)

    def test_cut_with_orphan_receive_is_inconsistent(self):
        log = _log_with_message()
        # Include the receive (p1 has 2 events) but not the send (p0 has 1 event).
        cut = Cut.of([1, 2])
        assert not cut.is_consistent(log)
        assert cut.inconsistency_witnesses(log) == [0]

    def test_cut_without_receive_is_consistent(self):
        log = _log_with_message()
        assert Cut.of([2, 1]).is_consistent(log)

    def test_negative_lengths_rejected(self):
        with pytest.raises(ValueError):
            Cut.of([-1, 0])

    def test_lengths_must_match_log(self):
        log = _log_with_message()
        with pytest.raises(ValueError):
            Cut.of([1, 1, 1]).is_consistent(log)
        with pytest.raises(ValueError):
            Cut.of([10, 0]).is_consistent(log)

    def test_includes_and_subcut(self):
        cut = Cut.of([2, 1])
        assert cut.includes(0, 1)
        assert not cut.includes(0, 2)
        assert Cut.of([1, 1]).is_subcut_of(cut)
        assert not cut.is_subcut_of(Cut.of([1, 1]))

    def test_restrict_produces_sub_log(self):
        log = _log_with_message()
        sub = Cut.of([2, 1]).restrict(log)
        assert sub.total_events() == 3
        assert len(sub.delivered_messages()) == 0


class TestLatestConsistentCut:
    def test_full_log_already_consistent(self):
        log = _log_with_message()
        assert latest_consistent_cut(log) == Cut.full(log)

    def test_latest_consistent_cut_is_consistent_and_maximal(self):
        log = _log_with_message()
        cut = latest_consistent_cut(log)
        assert cut.is_consistent(log)
