"""Unit tests for the transitive dependency vector mechanism (Section 4.2)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.causality.dependency_vector import DependencyVector, causally_precedes


class TestDependencyVectorBasics:
    def test_initial_is_all_zeros(self):
        dv = DependencyVector.initial(4, owner=2)
        assert dv.as_tuple() == (0, 0, 0, 0)
        assert dv.owner == 2

    def test_owner_must_be_in_range(self):
        with pytest.raises(ValueError):
            DependencyVector([0, 0], owner=2)

    def test_rejects_negative_entries(self):
        with pytest.raises(ValueError):
            DependencyVector([0, -1], owner=0)

    def test_advance_after_checkpoint_increments_own_entry(self):
        dv = DependencyVector.initial(3, owner=1)
        assert dv.advance_after_checkpoint() == 1
        assert dv.advance_after_checkpoint() == 2
        assert dv.as_tuple() == (0, 2, 0)

    def test_current_interval_tracks_own_entry(self):
        dv = DependencyVector.initial(3, owner=0)
        assert dv.current_interval() == 0
        dv.advance_after_checkpoint()
        assert dv.current_interval() == 1

    def test_piggyback_equals_snapshot(self):
        dv = DependencyVector([1, 2, 3], owner=0)
        assert dv.piggyback() == (1, 2, 3)
        assert dv.snapshot() == dv.as_tuple()

    def test_copy_is_independent(self):
        dv = DependencyVector([1, 2], owner=0)
        other = dv.copy()
        other.advance_after_checkpoint()
        assert dv.as_tuple() == (1, 2)


class TestAbsorb:
    def test_absorb_returns_updated_entries(self):
        dv = DependencyVector([2, 0, 1], owner=0)
        updated = dv.absorb((1, 3, 1))
        assert updated == [1]
        assert dv.as_tuple() == (2, 3, 1)

    def test_absorb_is_componentwise_maximum(self):
        dv = DependencyVector([2, 0, 1], owner=0)
        dv.absorb((0, 5, 4))
        assert dv.as_tuple() == (2, 5, 4)

    def test_absorb_rejects_wrong_size(self):
        dv = DependencyVector.initial(2, owner=0)
        with pytest.raises(ValueError):
            dv.absorb((1, 2, 3))

    def test_absorb_no_new_information(self):
        dv = DependencyVector([3, 3, 3], owner=1)
        assert dv.absorb((1, 1, 1)) == []


class TestEquationTwoAndThree:
    def test_last_known_checkpoint_is_entry_minus_one(self):
        dv = DependencyVector([2, 1, 0], owner=0)
        assert dv.last_known_checkpoint(0) == 1
        assert dv.last_known_checkpoint(1) == 0
        assert dv.last_known_checkpoint(2) == -1

    def test_knows_checkpoint_equation_two(self):
        dv = DependencyVector([2, 1, 0], owner=0)
        assert dv.knows_checkpoint(0, 1)
        assert not dv.knows_checkpoint(0, 2)
        assert not dv.knows_checkpoint(2, 0)

    def test_module_level_causally_precedes(self):
        assert causally_precedes(1, 0, (0, 1, 0))
        assert not causally_precedes(1, 1, (0, 1, 0))


class TestRestore:
    def test_restore_overwrites_entries(self):
        dv = DependencyVector([5, 5, 5], owner=0)
        dv.restore((1, 2, 3))
        assert dv.as_tuple() == (1, 2, 3)

    def test_restore_rejects_bad_input(self):
        dv = DependencyVector.initial(3, owner=0)
        with pytest.raises(ValueError):
            dv.restore((1, 2))
        with pytest.raises(ValueError):
            dv.restore((1, -2, 0))


class TestProperties:
    @given(
        st.lists(st.integers(0, 10), min_size=2, max_size=6),
        st.data(),
    )
    def test_absorb_is_monotone_and_idempotent(self, entries, data):
        dv = DependencyVector(entries, owner=0)
        incoming = tuple(
            data.draw(st.integers(0, 12)) for _ in range(len(entries))
        )
        before = dv.as_tuple()
        dv.absorb(incoming)
        after = dv.as_tuple()
        assert all(a >= b for a, b in zip(after, before))
        assert dv.absorb(incoming) == []  # idempotent

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=6))
    def test_equality_and_hash_consistency(self, entries):
        a = DependencyVector(entries, owner=0)
        b = DependencyVector(entries, owner=0)
        assert a == b and hash(a) == hash(b)
