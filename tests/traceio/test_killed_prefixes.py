"""Killed-run trace prefixes of the live backend.

Companion of the artifact-level truncation tests in
``test_roundtrip.TestErrorPaths``: a live worker can be SIGKILLed at any
instant, so its shard is by construction a *prefix* of its history —
possibly with a torn final line — and the coordinator must still merge the
surviving records into a ``verify_trace``-clean, replayable v2 artifact.
Also home of the :class:`~repro.traceio.format.RunProvenance` round-trip
pins (the helper every traced driver now builds its header ``meta`` with).
"""

from __future__ import annotations

import pytest

from repro.live.merge import ordered_entries, replay_entries
from repro.live.shard import ShardWriter, read_shard
from repro.traceio import TraceReader, TraceWriter, verify_trace
from repro.traceio.format import RunProvenance


def _exchange(tmp_path):
    """Two shards of a short 2-process exchange (both still open)."""
    paths = [str(tmp_path / f"w{pid}.shard.jsonl") for pid in (0, 1)]
    w0 = ShardWriter(paths[0], pid=0, num_processes=2)
    w1 = ShardWriter(paths[1], pid=1, num_processes=2)
    w0.record_checkpoint(0, 0, (1, 0), forced=False, time=0.0)
    w1.record_checkpoint(1, 0, (0, 1), forced=False, time=0.0)
    w0.record_send(0, 1, 1, 1.0)
    w1.merge_clock(w0.lamport)
    w1.record_receive(1, 1.6)
    w0.record_send(0, 1, 2, 2.0)
    w1.record_checkpoint(1, 1, (1, 2), forced=True, time=2.5)
    return paths, w0, w1


def _merge_to_artifact(tmp_path, shard_paths, name="merged.trace.jsonl"):
    shards = [read_shard(path) for path in shard_paths]
    out = str(tmp_path / name)
    writer = TraceWriter.scripted(out, shards[0].num_processes, workload="live-prefix")
    replay_entries(ordered_entries(shards), shards[0].num_processes, sink=writer)
    writer.seal()
    return out


class TestKilledShardPrefixes:
    def test_sigkilled_shard_merges_verify_clean(self, tmp_path):
        """No footer (the kill case): everything recorded merges cleanly."""
        paths, w0, w1 = _exchange(tmp_path)
        # Neither worker closed its shard — both SIGKILLed.
        artifact = _merge_to_artifact(tmp_path, paths)
        assert verify_trace(artifact) == []
        replayed = TraceReader(artifact).replay()
        assert replayed.recorder.log.total_events() == 6

    def test_torn_final_line_merges_verify_clean(self, tmp_path):
        """A kill mid-``write`` tears the last line; the prefix still merges."""
        paths, w0, w1 = _exchange(tmp_path)
        with open(paths[1], "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        with open(paths[1], "w", encoding="utf-8") as handle:
            handle.write("\n".join(lines[:-1] + [lines[-1][: len(lines[-1]) // 2]]))
        artifact = _merge_to_artifact(tmp_path, paths)
        assert verify_trace(artifact) == []
        # The torn record (p1's forced checkpoint) is gone; the rest is kept.
        replayed = TraceReader(artifact).replay()
        assert replayed.recorder.log.total_events() == 5

    def test_receive_without_durable_send_never_enters_artifact(self, tmp_path):
        """Defence in depth: the merge drops receives whose send is missing.

        The durable-send-before-transmit rule makes this unreachable in a
        real run, but the merge must stay clean even on a hand-damaged shard
        (the recorder's silent-ignore replay contract).
        """
        paths, w0, w1 = _exchange(tmp_path)
        w1.merge_clock(1000)
        w1.record_receive(999_999, 3.0)  # no such send anywhere
        artifact = _merge_to_artifact(tmp_path, paths)
        assert verify_trace(artifact) == []
        replayed = TraceReader(artifact).replay()
        assert replayed.recorder.log.total_events() == 6

    def test_prefix_supports_recovery_planning(self, tmp_path):
        """The coordinator plans a recovery from exactly these prefixes."""
        from repro.recovery.manager import RecoveryManager

        paths, w0, w1 = _exchange(tmp_path)
        shards = [read_shard(path) for path in paths]
        recorder = replay_entries(ordered_entries(shards), 2)
        ccp = recorder.ccp(volatile_dvs={0: (2, 0), 1: (2, 2)})
        plan = RecoveryManager().plan(ccp, [0])
        assert plan.rollback_for(0) is not None


class TestRunProvenanceRoundTrip:
    """`to_meta` and `from_meta` are inverses for every driver shape."""

    @pytest.mark.parametrize(
        "provenance",
        [
            RunProvenance.campaign_cell(
                campaign="paper-grid",
                cell_id="0123abcd",
                params={"collector": "rdt-lgc", "n": 8},
                cell_index=3,
            ),
            RunProvenance.campaign_cell(
                campaign="paper-grid", cell_id="0123abcd", params={"n": 8}
            ),
            RunProvenance.explorer(
                config={"num_processes": 2}, schedule=[["send", 0, 1]]
            ),
            RunProvenance.live_run(time_scale=0.02, processes=3, epochs=2),
        ],
    )
    def test_round_trip(self, provenance):
        recovered = RunProvenance.from_meta(provenance.to_meta())
        assert recovered is not None
        assert recovered.kind == provenance.kind
        for key, value in provenance.fields.items():
            if value is not None:
                assert recovered.fields[key] == value

    def test_unknown_meta_is_none(self):
        assert RunProvenance.from_meta({}) is None
        assert RunProvenance.from_meta({"notes": "hand-rolled"}) is None

    def test_live_header_from_meta(self, tmp_path):
        """A merged live artifact's header meta parses back as a live run."""
        meta = RunProvenance.live_run(time_scale=0.02, processes=2).to_meta()
        path = str(tmp_path / "p.trace.jsonl")
        writer = TraceWriter.scripted(path, 2, meta=meta)
        writer.seal()
        header = TraceReader(path).header()
        provenance = RunProvenance.from_meta(header["meta"])
        assert provenance is not None
        assert provenance.kind == "live"
        assert provenance.fields == {"time_scale": 0.02, "processes": 2}

    def test_campaign_meta_shape_is_flat(self):
        """Byte-compatibility pin: campaign meta keeps its historical keys."""
        meta = RunProvenance.campaign_cell(
            campaign="c", cell_id="x", params={"a": 1}, cell_index=0
        ).to_meta()
        assert meta == {
            "campaign": "c",
            "cell_id": "x",
            "params": {"a": 1},
            "cell_index": 0,
        }
