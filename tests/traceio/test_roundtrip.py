"""Round-trip properties of the persistent trace format.

The central contract: replaying a persisted trace into a fresh
:class:`TraceRecorder` rebuilds the *identical* recorder — event log,
recorded dependency vectors, message intervals, CCP analyses and recovery
lines all byte-for-byte equal to the live run's — and a traced campaign can
be re-aggregated from its artifacts alone with byte-identical tables.
Exercised across random seeds × protocols × failure schedules, plus the
corrupt/truncated/version-mismatch error paths.
"""

from __future__ import annotations

import dataclasses
import functools
import json
import os

import pytest

from repro.scenarios.campaign import (
    CampaignSpec,
    CollectorSpec,
    WorkloadSpec,
    aggregate_campaign,
    cell_metrics,
    run_campaign,
)
from repro.scenarios.experiments import random_run_config
from repro.simulation.runner import SimulationRunner
from repro.simulation.trace import TraceRecorder
from repro.traceio import (
    TraceFormatError,
    TraceReader,
    TraceTruncatedError,
    TraceVersionError,
    TraceWriter,
    analysis_table,
    campaign_records_from_traces,
    metrics_from_record,
    result_to_record,
    verify_trace,
)


def _traced_run(tmp_path, *, seed, protocol="fdas", crashes=0, **kwargs):
    """Run one simulation with trace capture; returns (runner, result, path)."""
    path = str(tmp_path / f"run_{protocol}_{seed}_{crashes}.trace.jsonl")
    config = dataclasses.replace(
        random_run_config(
            seed=seed,
            protocol=protocol,
            crashes=crashes,
            keep_final_ccp=False,
            **kwargs,
        ),
        trace_path=path,
    )
    runner = SimulationRunner(config)
    result = runner.run()
    return runner, result, path


def _unsafe_collector_spec(*, seeds) -> CampaignSpec:
    """The unsafe Manivannan–Singhal grid (window far below the actual
    checkpoint cadence, crash injection on) over the given seed indices."""
    return CampaignSpec(
        name="traceio-unsafe",
        num_processes=3,
        duration=60.0,
        collectors=(
            CollectorSpec.of(
                "manivannan-singhal",
                {"checkpoint_period": 4.0, "max_message_delay": 0.1},
            ),
        ),
        workloads=(WorkloadSpec.of("uniform-random"),),
        failure_counts=(2,),
        seeds=tuple(seeds),
    )


@functools.lru_cache(maxsize=1)
def _scan_unsafe_seeds(limit: int = 64):
    """``(passing, failing)`` seed indices of the unsafe-collector grid.

    Scans the grid's own derived seeds (each cell is materialised and run
    exactly as the campaign would run it) instead of trusting a magic seed
    window: whenever an RNG change re-rolls the network draws, the scan
    lands on a new tripping seed and the dependent tests stay meaningful —
    or fail loudly here if the failure mode itself disappeared.
    """
    passing = None
    failing = None
    for seed_index in range(limit):
        cell = _unsafe_collector_spec(seeds=(seed_index,)).cells()[0]
        try:
            SimulationRunner(cell.config()).run()
        except Exception:
            failing = failing if failing is not None else seed_index
        else:
            passing = passing if passing is not None else seed_index
        if passing is not None and failing is not None:
            return passing, failing
    raise AssertionError(
        f"range({limit}) holds no (passing, failing) seed pair for the unsafe "
        f"Manivannan-Singhal grid (found passing={passing}, failing={failing}); "
        f"the roundtrip failure-path tests would be vacuous"
    )


def find_failing_seed() -> int:
    """The first seed index whose cell trips the unsafe collector."""
    return _scan_unsafe_seeds()[1]


def find_passing_seed() -> int:
    """The first seed index whose unsafe-collector cell completes cleanly."""
    return _scan_unsafe_seeds()[0]


def _event_view(recorder: TraceRecorder):
    return [
        [
            (e.kind, e.message_id, e.checkpoint_index, e.time, e.forced)
            for e in recorder.log.history(pid)
        ]
        for pid in range(recorder.num_processes)
    ]


class TestRecorderRoundTrip:
    """Replayed recorder ≡ live recorder, across the parameter grid."""

    @pytest.mark.parametrize("protocol", ["fdas", "fdi", "cbr", "uncoordinated"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_event_log_and_dvs_roundtrip(self, tmp_path, protocol, seed):
        runner, _, path = _traced_run(tmp_path, seed=seed, protocol=protocol)
        replayed = TraceReader(path).replay()
        assert _event_view(replayed.recorder) == _event_view(runner.trace)
        assert (
            replayed.recorder.recorded_checkpoint_dvs()
            == runner.trace.recorded_checkpoint_dvs()
        )

    @pytest.mark.parametrize("seed", [1, 4, 11, 23])
    @pytest.mark.parametrize("crashes", [1, 2])
    def test_recovery_sessions_roundtrip(self, tmp_path, seed, crashes):
        """Recovery truncation is part of the trace: the replayed history is
        the post-rollback history, with the same dropped checkpoints."""
        runner, result, path = _traced_run(tmp_path, seed=seed, crashes=crashes)
        assert result.recoveries, "failure schedule must actually trigger recovery"
        replayed = TraceReader(path).replay()
        assert len(replayed.recovery_plans) == len(result.recoveries)
        assert _event_view(replayed.recorder) == _event_view(runner.trace)
        assert (
            replayed.recorder.recorded_checkpoint_dvs()
            == runner.trace.recorded_checkpoint_dvs()
        )

    @pytest.mark.parametrize("seed", [2, 9])
    @pytest.mark.parametrize("crashes", [0, 2])
    def test_analyses_are_byte_identical(self, tmp_path, seed, crashes):
        """CCP substrate and every shared analysis agree exactly."""
        runner, _, path = _traced_run(tmp_path, seed=seed, crashes=crashes)
        replayed = TraceReader(path).replay()
        live_ccp = runner.trace.ccp()
        replayed_ccp = replayed.recorder.ccp()
        assert [
            dataclasses.astuple(m) for m in replayed_ccp.messages()
        ] == [dataclasses.astuple(m) for m in live_ccp.messages()]
        assert (
            replayed_ccp.analyses.useless_checkpoints
            == live_ccp.analyses.useless_checkpoints
        )
        assert (
            replayed_ccp.analyses.theorem1_retained
            == live_ccp.analyses.theorem1_retained
        )
        assert (
            replayed_ccp.analyses.theorem2_retained
            == live_ccp.analyses.theorem2_retained
        )
        for pid in live_ccp.processes:
            assert replayed_ccp.analyses.recovery_line(
                frozenset((pid,))
            ) == live_ccp.analyses.recovery_line(frozenset((pid,)))
        # The most end-to-end check: the rendered analysis table is
        # byte-identical between the live run and its replayed trace.
        live_table = analysis_table(runner.trace, title="T").render()
        replayed_table = analysis_table(replayed.recorder, title="T").render()
        assert replayed_table == live_table

    def test_final_volatile_dvs_reproduce_live_audit_ccp(self, tmp_path):
        runner, _, path = _traced_run(tmp_path, seed=5, crashes=1)
        replayed = TraceReader(path).replay()
        live_ccp = runner.current_ccp()
        replayed_ccp = replayed.ccp(with_final_volatile_dvs=True)
        for pid in live_ccp.processes:
            assert replayed_ccp.dv(replayed_ccp.volatile_id(pid)) == live_ccp.dv(
                live_ccp.volatile_id(pid)
            )

    def test_metrics_survive_the_footer(self, tmp_path):
        _, result, path = _traced_run(tmp_path, seed=3, crashes=1)
        replayed = TraceReader(path).replay()
        assert replayed.metrics == result.metrics_dict() == cell_metrics(result)
        assert replayed.status == "ok"
        assert verify_trace(path) == []

    def test_metrics_from_record_mirrors_metrics_dict(self, tmp_path):
        """The footer's result record alone re-derives the exact metrics."""
        for seed, crashes in ((0, 0), (6, 2)):
            _, result, _ = _traced_run(tmp_path, seed=seed, crashes=crashes)
            record = json.loads(json.dumps(result_to_record(result)))
            assert metrics_from_record(record) == result.metrics_dict()

    def test_samples_stream_to_the_trace(self, tmp_path):
        runner, result, path = _traced_run(tmp_path, seed=0)
        replayed = TraceReader(path).replay()
        assert replayed.samples == [
            (s.time, s.retained_per_process) for s in result.samples
        ]


class TestScriptedCapture:
    """Recorders driven outside the runner persist and replay too."""

    def test_scripted_writer_roundtrip(self, tmp_path):
        path = str(tmp_path / "scripted.trace.jsonl")
        recorder = TraceRecorder(2)
        writer = TraceWriter.scripted(path, 2, seed=42)
        recorder.attach_sink(writer)
        recorder.record_checkpoint(0, 0, (0, 0), forced=False, time=1.0)
        recorder.record_checkpoint(1, 0, (0, 0), forced=False, time=2.0)
        recorder.record_send(0, 1, 0, 3.0)
        recorder.record_receive(0, 4.0)
        recorder.record_internal(1, 5.0)
        recorder.record_checkpoint(1, 1, (1, 1), forced=True, time=6.0)
        writer.seal()
        replayed = TraceReader(path).replay()
        assert _event_view(replayed.recorder) == _event_view(recorder)
        assert replayed.status == "ok"
        assert replayed.metrics is None
        assert verify_trace(path) == []


class TestCampaignRoundTrip:
    """A traced sweep re-aggregates byte-identically from its artifacts."""

    @pytest.fixture(scope="class")
    def tiny_spec(self):
        return CampaignSpec(
            name="traceio-tiny",
            num_processes=3,
            duration=25.0,
            collectors=(
                CollectorSpec.of("rdt-lgc"),
                CollectorSpec.of("all-process-line", {"period": 10.0}),
            ),
            workloads=(WorkloadSpec.of("uniform-random"),),
            failure_counts=(0, 1),
            seeds=(0, 1),
        )

    def test_aggregates_are_byte_identical(self, tmp_path, tiny_spec):
        traces = str(tmp_path / "traces")
        run = run_campaign(tiny_spec, trace_dir=traces)
        live = aggregate_campaign(run.records)
        records = campaign_records_from_traces(traces)
        assert [r["cell_id"] for r in records] == [
            r["cell_id"] for r in run.records
        ]
        replayed = aggregate_campaign(records)
        assert replayed.to_csv() == live.to_csv()
        assert replayed.to_json() == live.to_json()

    def test_traced_and_untraced_sweeps_agree(self, tmp_path, tiny_spec):
        """Trace persistence must not perturb the simulation."""
        traced = run_campaign(tiny_spec, trace_dir=str(tmp_path / "traces2"))
        untraced = run_campaign(tiny_spec)
        for a, b in zip(traced.records, untraced.records):
            assert a["cell_id"] == b["cell_id"]
            assert a["metrics"] == b["metrics"]

    def test_failed_cells_leave_aborted_but_replayable_traces(self, tmp_path):
        # Scanned, not hard-coded: a magic seed window silently goes vacuous
        # whenever seeded network draws re-roll (it already happened once,
        # with PR 4's per-link streams).  find_failing_seed() re-derives a
        # tripping grid point — and *fails* if none exists in the scan range.
        spec = _unsafe_collector_spec(
            seeds=tuple(sorted({find_passing_seed(), find_failing_seed()}))
        )
        traces = str(tmp_path / "traces")
        run = run_campaign(spec, trace_dir=traces)
        failed = run.failed_records
        assert failed, "find_failing_seed() returned a seed that did not fail"
        records = {r["cell_id"]: r for r in campaign_records_from_traces(traces)}
        for record in failed:
            replayed_record = records[record["cell_id"]]
            assert replayed_record["status"] == "failed"
            # The aborted trace still replays up to the failure point.
            replayed = TraceReader(
                os.path.join(traces, record["trace"])
            ).replay()
            assert replayed.status == "aborted"
            assert replayed.recorder.log.total_events() > 0
        # Aggregation from traces matches live aggregation (failed counts too).
        live = aggregate_campaign(run.records)
        replayed_summary = aggregate_campaign(
            campaign_records_from_traces(traces)
        )
        assert replayed_summary.to_csv() == live.to_csv()


class TestErrorPaths:
    """Corrupt, truncated and version-mismatched traces are rejected loudly."""

    @pytest.fixture
    def trace_path(self, tmp_path):
        _, _, path = _traced_run(tmp_path, seed=1, crashes=1)
        return path

    def test_missing_footer_is_truncation(self, trace_path):
        lines = open(trace_path, encoding="utf-8").readlines()
        open(trace_path, "w", encoding="utf-8").writelines(lines[:-1])
        with pytest.raises(TraceTruncatedError):
            TraceReader(trace_path).replay()
        replayed = TraceReader(trace_path).replay(allow_partial=True)
        assert replayed.truncated
        assert replayed.status == "truncated"
        assert replayed.recorder.log.total_events() > 0
        assert verify_trace(trace_path) == [
            f"{trace_path}: trace is truncated (no footer)"
        ]

    def test_half_written_final_line_is_truncation(self, trace_path):
        content = open(trace_path, encoding="utf-8").read()
        open(trace_path, "w", encoding="utf-8").write(content[: len(content) // 2])
        with pytest.raises(TraceTruncatedError):
            TraceReader(trace_path).replay()
        assert TraceReader(trace_path).replay(allow_partial=True).truncated

    def test_dropped_interior_records_fail_the_count_check(self, trace_path):
        lines = open(trace_path, encoding="utf-8").readlines()
        body = [line for line in lines[1:-1]]
        # Removing a trailing sample keeps the stream replayable but makes
        # the footer counts lie — exactly what the counts are there to catch.
        sample_lines = [i for i, line in enumerate(body) if line.startswith('["S"')]
        del body[sample_lines[-1]]
        open(trace_path, "w", encoding="utf-8").writelines(
            [lines[0]] + body + [lines[-1]]
        )
        with pytest.raises(TraceTruncatedError, match="records are missing"):
            TraceReader(trace_path).replay()
        # Partial mode replays what is there and marks the damage instead;
        # verify_trace reports it as a violation rather than raising.
        replayed = TraceReader(trace_path).replay(allow_partial=True)
        assert replayed.truncated
        assert any("counts disagree" in v for v in verify_trace(trace_path))

    def test_interior_corruption_is_a_format_error(self, trace_path):
        lines = open(trace_path, encoding="utf-8").readlines()
        lines[len(lines) // 2] = "{not json}\n"
        open(trace_path, "w", encoding="utf-8").writelines(lines)
        with pytest.raises(TraceFormatError):
            TraceReader(trace_path).replay()
        # Structural damage is fatal even in partial mode.
        with pytest.raises(TraceFormatError):
            TraceReader(trace_path).replay(allow_partial=True)

    def test_unknown_tag_is_a_format_error(self, trace_path):
        lines = open(trace_path, encoding="utf-8").readlines()
        lines.insert(2, '["Z",1,2]\n')
        open(trace_path, "w", encoding="utf-8").writelines(lines)
        with pytest.raises(TraceFormatError, match="unknown record tag"):
            TraceReader(trace_path).replay()

    def test_newer_version_is_refused(self, trace_path):
        lines = open(trace_path, encoding="utf-8").readlines()
        header = json.loads(lines[0])
        header["version"] = 999
        lines[0] = json.dumps(header) + "\n"
        open(trace_path, "w", encoding="utf-8").writelines(lines)
        with pytest.raises(TraceVersionError):
            TraceReader(trace_path).replay()

    def test_failed_runner_construction_seals_the_trace(self, tmp_path):
        """A cell that cannot even be built leaves an aborted (not a
        header-only, footer-less) artifact."""
        path = str(tmp_path / "broken.trace.jsonl")
        config = dataclasses.replace(
            random_run_config(seed=0, keep_final_ccp=False),
            collector="no-such-collector",
            trace_path=path,
        )
        with pytest.raises(Exception, match="no-such-collector"):
            SimulationRunner(config)
        replayed = TraceReader(path).replay()
        assert replayed.status == "aborted"
        assert "no-such-collector" in replayed.footer["error"]

    def test_not_a_trace_file(self, tmp_path):
        path = str(tmp_path / "not_a_trace.jsonl")
        open(path, "w", encoding="utf-8").write('{"cell_id": "abc"}\n')
        with pytest.raises(TraceFormatError):
            TraceReader(path).replay()

    def test_record_inconsistent_with_history(self, trace_path):
        """A structurally valid record the history cannot accept is caught."""
        lines = open(trace_path, encoding="utf-8").readlines()
        # Receive of a message that was never sent.
        lines.insert(1, '["r",999999,0.5]\n')
        open(trace_path, "w", encoding="utf-8").writelines(lines)
        with pytest.raises(TraceTruncatedError):
            # The bogus receive is silently ignorable by the recorder (guard
            # for dropped messages), so the failure surfaces as an event
            # count mismatch instead of slipping through unnoticed.
            TraceReader(trace_path).replay()
