"""SimTransport regression gate: byte-identical traces for seeded runs.

The transport refactor's non-negotiable invariant is that simulated
executions are unchanged: for every seeded run, the v2 trace artifact
written through the refactored stack must be byte-identical to the one the
pre-refactor stack wrote.  The golden artifacts under
``tests/golden_traces/`` were generated from the pre-refactor tree; this
test re-runs the same protocol x collector x fault-model matrix and
compares raw bytes.

Regenerating (only legitimate when the trace *format* changes, never to
absorb an execution change):

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/traceio/test_golden_traces.py
"""

import os

import pytest

from repro.simulation.channels import (
    DuplicatingChannel,
    GilbertElliottChannel,
    PartitionSchedule,
    UniformChannel,
)
from repro.simulation.failures import FailureSchedule
from repro.simulation.network import NetworkConfig
from repro.simulation.runner import SimulationConfig, run_simulation
from repro.simulation.workloads import make_workload
from repro.traceio.reader import verify_trace

GOLDEN_DIR = os.path.join(os.path.dirname(__file__), os.pardir, "golden_traces")


def _golden_matrix():
    """name -> SimulationConfig factory (protocol x collector x fault model)."""
    return {
        "uniform-baseline": lambda: SimulationConfig(
            num_processes=3,
            duration=40.0,
            workload=make_workload("uniform-random"),
            seed=101,
            trace_meta={"golden": "uniform-baseline"},
        ),
        "lossy-uniform": lambda: SimulationConfig(
            num_processes=4,
            duration=40.0,
            workload=make_workload("uniform-random"),
            network=NetworkConfig(jitter=0.8, drop_probability=0.2),
            seed=202,
            trace_meta={"golden": "lossy-uniform"},
        ),
        "gilbert-elliott-crash": lambda: SimulationConfig(
            num_processes=3,
            duration=40.0,
            workload=make_workload("uniform-random"),
            network=NetworkConfig(
                channel=GilbertElliottChannel(loss_bad=0.6, p_good_to_bad=0.1)
            ),
            failures=FailureSchedule.of([(20.0, 1)]),
            seed=303,
            trace_meta={"golden": "gilbert-elliott-crash"},
        ),
        "duplicating": lambda: SimulationConfig(
            num_processes=3,
            duration=40.0,
            workload=make_workload("uniform-random"),
            network=NetworkConfig(
                channel=DuplicatingChannel(
                    channel=UniformChannel(drop_probability=0.1),
                    duplicate_probability=0.3,
                )
            ),
            seed=404,
            trace_meta={"golden": "duplicating"},
        ),
        "fdi-partitioned-fifo": lambda: SimulationConfig(
            num_processes=4,
            duration=40.0,
            workload=make_workload("ring"),
            protocol="fdi",
            network=NetworkConfig(
                partitions=PartitionSchedule.of([(10.0, 20.0, [[0, 1], [2, 3]])]),
                fifo=True,
            ),
            seed=505,
            trace_meta={"golden": "fdi-partitioned-fifo"},
        ),
        "cbr-wang-coordinated-crash": lambda: SimulationConfig(
            num_processes=3,
            duration=40.0,
            workload=make_workload("uniform-random"),
            protocol="cbr",
            collector="wang-coordinated",
            failures=FailureSchedule.of([(25.0, 2)]),
            seed=606,
            trace_meta={"golden": "cbr-wang-coordinated-crash"},
        ),
        "manivannan-singhal-pruned": lambda: SimulationConfig(
            num_processes=3,
            duration=40.0,
            workload=make_workload("client-server"),
            collector="manivannan-singhal",
            prune_trace=True,
            seed=707,
            trace_meta={"golden": "manivannan-singhal-pruned"},
        ),
    }


@pytest.mark.parametrize("name", sorted(_golden_matrix()))
def test_golden_trace_is_byte_identical(name, tmp_path):
    factory = _golden_matrix()[name]
    golden_path = os.path.join(GOLDEN_DIR, f"{name}.trace.jsonl")
    fresh_path = str(tmp_path / f"{name}.trace.jsonl")
    config = factory()
    import dataclasses

    run_simulation(dataclasses.replace(config, trace_path=fresh_path))
    verify_trace(fresh_path)
    with open(fresh_path, "rb") as handle:
        fresh = handle.read()
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        os.makedirs(GOLDEN_DIR, exist_ok=True)
        with open(golden_path, "wb") as handle:
            handle.write(fresh)
    assert os.path.exists(golden_path), (
        f"missing golden trace {golden_path}; regenerate with REPRO_REGEN_GOLDEN=1"
    )
    with open(golden_path, "rb") as handle:
        golden = handle.read()
    assert fresh == golden, (
        f"trace for seeded run {name!r} diverged from the pre-refactor golden "
        f"artifact — the refactor changed a simulated execution"
    )
