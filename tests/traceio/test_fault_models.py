"""Trace capture/replay under network fault models (format version 2).

The acceptance path of the fault-model subsystem: runs under duplication,
partitions and churn stream version-2 traces (``d``/``p`` records, fault
provenance in the header) that replay into byte-identical recorders, and a
traced partition/churn *campaign* re-aggregates byte-identically from its
artifacts alone.
"""

import json
import os

import pytest

from repro.scenarios.campaign import (
    CampaignSpec,
    CollectorSpec,
    WorkloadSpec,
    aggregate_campaign,
    run_campaign,
)
from repro.simulation.channels import (
    DuplicatingChannel,
    GilbertElliottChannel,
    PartitionSchedule,
)
from repro.simulation.failures import FailureModelSpec, FailureSchedule
from repro.simulation.network import NetworkConfig
from repro.simulation.runner import SimulationConfig, SimulationRunner
from repro.simulation.workloads import UniformRandomWorkload
from repro.traceio import TraceReader, analysis_table, verify_trace
from repro.traceio.cli import main as traceio_main
from repro.traceio.reader import campaign_records_from_traces

ADVERSARIAL_NETWORK = NetworkConfig(
    channel=DuplicatingChannel(
        channel=GilbertElliottChannel(loss_bad=0.4), duplicate_probability=0.3
    ),
    partitions=PartitionSchedule.of([(15.0, 30.0, ((0, 1),))]),
    fifo=True,
)


def _traced_run(path, *, network=ADVERSARIAL_NETWORK, failures=None, seed=21):
    config = SimulationConfig(
        num_processes=4,
        duration=60.0,
        workload=UniformRandomWorkload(),
        network=network,
        failures=failures if failures is not None else FailureSchedule.none(),
        seed=seed,
        trace_path=str(path),
    )
    runner = SimulationRunner(config)
    result = runner.run()
    return runner, result


class TestFaultModelRoundTrip:
    @pytest.fixture()
    def traced(self, tmp_path):
        path = tmp_path / "adversarial.trace.jsonl"
        runner, result = _traced_run(
            path,
            failures=FailureSchedule.of([(40.0, 2)]),
        )
        return {"path": str(path), "runner": runner, "result": result}

    def test_header_carries_fault_model_provenance(self, traced):
        header = TraceReader(traced["path"]).header()
        assert header["version"] == 2
        network = header["network"]
        assert network["channel"]["kind"] == "duplicating"
        assert network["channel"]["channel"]["kind"] == "gilbert-elliott"
        assert network["partitions"] == [
            {"start": 15.0, "end": 30.0, "groups": [[0, 1]]}
        ]
        assert network["fifo"] is True

    def test_duplicate_and_partition_records_present(self, traced):
        tags = set()
        for _, parsed in TraceReader(traced["path"]).lines():
            if isinstance(parsed, list):
                tags.add(parsed[0])
        result = traced["result"]
        assert result.messages_duplicated > 0
        assert "d" in tags
        assert "p" in tags

    def test_replay_is_byte_identical(self, traced):
        replayed = TraceReader(traced["path"]).replay()
        live = traced["runner"].trace
        assert (
            analysis_table(replayed.recorder).render()
            == analysis_table(live).render()
        )
        assert replayed.recorder.log.total_events() == live.log.total_events()
        assert (
            replayed.recorder.recorded_checkpoint_dvs()
            == live.recorded_checkpoint_dvs()
        )
        # Partition transitions are collected as provenance.
        assert [(k, t) for k, t, _ in replayed.partition_events] == [
            ("cut", 15.0),
            ("heal", 30.0),
        ]

    def test_verify_passes_and_metrics_mirror(self, traced):
        assert verify_trace(traced["path"]) == []
        replayed = TraceReader(traced["path"]).replay()
        assert replayed.metrics == traced["result"].metrics_dict()
        assert replayed.metrics["duplicated"] == traced["result"].messages_duplicated
        assert (
            replayed.metrics["partition_blocked"]
            == traced["result"].messages_blocked_by_partition
        )


class TestTracedFaultCampaign:
    def test_partition_churn_campaign_reaggregates_byte_identically(self, tmp_path):
        spec = CampaignSpec(
            name="fault-replay",
            num_processes=3,
            duration=40.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
            failure_counts=(FailureModelSpec.of("churn", {"hazard_rate": 0.05}),),
            networks=(
                NetworkConfig(
                    partitions=PartitionSchedule.of([(10.0, 25.0, ((0,),))])
                ),
                NetworkConfig(
                    channel=DuplicatingChannel(duplicate_probability=0.4)
                ),
            ),
            seeds=(0, 1),
        )
        traces = str(tmp_path / "traces")
        run = run_campaign(spec, trace_dir=traces)
        live = aggregate_campaign(run.records, group_by=("network", "failures"))
        records = campaign_records_from_traces(traces)
        assert [r["cell_id"] for r in records] == [r["cell_id"] for r in run.records]
        replayed = aggregate_campaign(records, group_by=("network", "failures"))
        assert replayed.to_csv() == live.to_csv()
        assert replayed.to_json() == live.to_json()

    def test_replay_cli_group_by_reproduces_custom_grouped_tables(self, tmp_path):
        """`replay DIR --group-by` must reproduce a fault study's per-regime
        CSV byte for byte (the default grouping folds regimes together)."""
        spec = CampaignSpec(
            name="fault-replay-cli",
            num_processes=3,
            duration=30.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
            networks=(
                NetworkConfig(),
                NetworkConfig(
                    channel=DuplicatingChannel(duplicate_probability=0.4)
                ),
            ),
            seeds=(0,),
        )
        traces = str(tmp_path / "traces")
        run = run_campaign(spec, trace_dir=traces)
        live = aggregate_campaign(run.records, group_by=("network", "collector"))
        out = str(tmp_path / "replayed")
        assert (
            traceio_main(
                ["replay", traces, "--out", out, "--group-by", "network,collector"]
            )
            == 0
        )
        with open(
            os.path.join(out, "fault-replay-cli.csv"), encoding="utf-8"
        ) as handle:
            assert handle.read() == live.to_csv()
        # A typoed axis is rejected up front with a clean error, not a
        # KeyError mid-aggregation.
        assert (
            traceio_main(["replay", traces, "--group-by", "network,colector"]) == 2
        )

    def test_cell_traces_replay_under_fault_models(self, tmp_path):
        spec = CampaignSpec(
            name="fault-replay-cells",
            num_processes=3,
            duration=40.0,
            collectors=(CollectorSpec.of("rdt-lgc"),),
            workloads=(WorkloadSpec.of("uniform-random"),),
            failure_counts=(FailureModelSpec.of("churn", {"hazard_rate": 0.04}),),
            networks=(
                NetworkConfig(
                    channel=DuplicatingChannel(duplicate_probability=0.4)
                ),
            ),
            seeds=(0,),
        )
        traces = str(tmp_path / "traces")
        run_campaign(spec, trace_dir=traces)
        for name in os.listdir(traces):
            path = os.path.join(traces, name)
            assert verify_trace(path) == []
            replayed = TraceReader(path).replay()
            assert replayed.status == "ok"


class TestDiffOnNetworkProvenance:
    def test_diff_flags_traces_differing_only_in_network_provenance(
        self, tmp_path, capsys
    ):
        """The satellite: two byte-identical executions whose headers carry
        different network provenance must diff as *different* — provenance is
        part of a trace's identity — and the divergence must be pinpointed to
        the header's network object, with zero divergent body records."""
        implicit = tmp_path / "implicit.trace.jsonl"
        explicit = tmp_path / "explicit.trace.jsonl"
        # The same draws in the same order: channel=None and an explicit
        # default UniformChannel are byte-identical *executions*.
        _traced_run(implicit, network=NetworkConfig(), seed=5)
        from repro.simulation.channels import UniformChannel

        _traced_run(
            explicit, network=NetworkConfig(channel=UniformChannel()), seed=5
        )
        body = []
        for path in (implicit, explicit):
            records = [
                parsed
                for _, parsed in TraceReader(str(path)).lines()
                if isinstance(parsed, list)
            ]
            body.append(records)
        assert body[0] == body[1]  # identical executions...

        code = traceio_main(["diff", str(implicit), str(explicit)])
        output = capsys.readouterr().out
        assert code == 1  # ...but distinct traces
        assert "header.network" in output
        assert "record " not in output  # no body divergence reported

    def test_diff_of_equivalent_fault_traces_passes(self, tmp_path, capsys):
        a = tmp_path / "a.trace.jsonl"
        b = tmp_path / "b.trace.jsonl"
        _traced_run(a)
        _traced_run(b)
        assert traceio_main(["diff", str(a), str(b)]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_inspect_reports_fault_model(self, tmp_path, capsys):
        path = tmp_path / "inspect.trace.jsonl"
        _traced_run(path)
        assert traceio_main(["inspect", str(path)]) == 0
        output = capsys.readouterr().out
        assert "channel:      duplicating" in output
        assert "partitions:   [15,30)" in output
        assert "discipline:   FIFO" in output
        assert "duplicates" in output


class TestV1Compatibility:
    @staticmethod
    def _downgrade_to_v1(source, path):
        """Rewrite a v2 trace of a default-transport run as a genuine v1
        trace: version 1 header, no fault-model counters in the footer."""
        lines = open(source, encoding="utf-8").read().splitlines()
        header = json.loads(lines[0])
        header["version"] = 1
        footer = json.loads(lines[-1])["footer"]
        for key in ("messages_duplicated", "messages_blocked_by_partition"):
            footer.get("result", {}).pop(key, None)
        for key in ("duplicated", "partition_blocked"):
            footer.get("metrics", {}).pop(key, None)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header) + "\n")
            handle.write("\n".join(lines[1:-1]) + "\n")
            handle.write(json.dumps({"footer": footer}) + "\n")

    def test_version_1_traces_remain_readable(self, tmp_path):
        """A v1 trace (no d/p tags, scalar network header) still replays."""
        path = tmp_path / "v1.trace.jsonl"
        source = tmp_path / "source.trace.jsonl"
        _traced_run(source, network=NetworkConfig(), seed=2)
        self._downgrade_to_v1(source, path)
        replayed = TraceReader(str(path)).replay()
        assert replayed.status == "ok"
        assert replayed.recorder.log.total_events() > 0

    def test_version_1_traces_verify_cleanly(self, tmp_path):
        """The metrics mirror must not inject v2 counters into a v1 record:
        verify_trace on a genuine v1 trace reports no violations."""
        path = tmp_path / "v1.trace.jsonl"
        source = tmp_path / "source.trace.jsonl"
        _traced_run(source, network=NetworkConfig(), seed=2)
        self._downgrade_to_v1(source, path)
        assert verify_trace(str(path)) == []
