"""End-to-end tests of ``python -m repro.traceio`` (record/replay/inspect/diff).

The acceptance path: ``record`` on a campaign writes per-cell trace
artifacts plus live aggregate tables; ``replay`` on the artifact directory
reproduces those tables byte for byte without re-simulation.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.traceio.cli import main


@pytest.fixture(scope="module")
def spec_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("spec") / "mini.json"
    path.write_text(
        json.dumps(
            {
                "name": "cli-mini",
                "num_processes": 3,
                "duration": 25.0,
                "collectors": ["rdt-lgc"],
                "workloads": ["uniform-random"],
                "failure_counts": [0, 1],
                "seeds": 2,
            }
        ),
        encoding="utf-8",
    )
    return str(path)


@pytest.fixture(scope="module")
def recorded(tmp_path_factory, spec_file):
    """One recorded sweep shared by the read-only CLI tests."""
    root = tmp_path_factory.mktemp("recorded")
    traces = str(root / "traces")
    out = str(root / "live")
    code = main(
        ["record", "--spec", spec_file, "--traces", traces, "--out", out, "--quiet"]
    )
    assert code == 0
    return {"traces": traces, "out": out, "name": "cli-mini"}


def _read(path):
    with open(path, "rb") as handle:
        return handle.read()


class TestRecordReplay:
    def test_record_writes_one_trace_per_cell(self, recorded):
        names = [n for n in os.listdir(recorded["traces"]) if n.endswith(".trace.jsonl")]
        assert len(names) == 4  # 1 collector x 1 workload x 2 failures x 2 seeds

    def test_replay_reproduces_aggregates_byte_for_byte(self, recorded, tmp_path):
        out = str(tmp_path / "replayed")
        assert main(["replay", recorded["traces"], "--out", out, "--verify"]) == 0
        name = recorded["name"]
        for suffix in (".csv", ".json"):
            live = _read(os.path.join(recorded["out"], name + suffix))
            replayed = _read(os.path.join(out, name + suffix))
            assert replayed == live, f"{suffix} diverged between live and replay"

    def test_replay_single_file(self, recorded, capsys):
        trace = os.path.join(recorded["traces"], os.listdir(recorded["traces"])[0])
        assert main(["replay", trace, "--verify"]) == 0
        output = capsys.readouterr().out
        assert "Replayed:" in output
        assert "metrics:" in output


class TestInspectAndDiff:
    def test_inspect_reports_provenance_and_metrics(self, recorded, capsys):
        trace = os.path.join(
            recorded["traces"], sorted(os.listdir(recorded["traces"]))[0]
        )
        assert main(["inspect", trace]) == 0
        output = capsys.readouterr().out
        assert "repro-trace v2" in output
        assert "cli-mini" in output
        assert "status:       ok" in output

    def test_inspect_always_renders_a_recoveries_row(self, recorded, capsys):
        """Crash-free traces show an explicit 'none', never an omitted section.

        Regression test: counterexample traces from crash-free explorations
        must inspect uniformly with crashing campaign cells.
        """
        outputs = []
        for name in sorted(os.listdir(recorded["traces"])):
            assert main(["inspect", os.path.join(recorded["traces"], name)]) == 0
            outputs.append(capsys.readouterr().out)
        for output in outputs:
            assert "recoveries:" in output
        # The grid holds both zero-failure and one-failure cells.
        assert any("recoveries:   none" in output for output in outputs)
        assert any(
            "recoveries:   none" not in output and "recoveries:" in output
            for output in outputs
        )

    def test_diff_of_identical_traces_passes(self, recorded, capsys):
        names = sorted(os.listdir(recorded["traces"]))
        a = os.path.join(recorded["traces"], names[0])
        assert main(["diff", a, a]) == 0
        assert "equivalent" in capsys.readouterr().out

    def test_diff_of_different_traces_fails(self, recorded, capsys):
        names = sorted(os.listdir(recorded["traces"]))
        a = os.path.join(recorded["traces"], names[0])
        b = os.path.join(recorded["traces"], names[1])
        assert main(["diff", a, b]) == 1
        assert capsys.readouterr().out.strip()


class TestErrorHandling:
    def test_replay_of_truncated_trace_errors_cleanly(self, recorded, tmp_path, capsys):
        source = os.path.join(
            recorded["traces"], sorted(os.listdir(recorded["traces"]))[0]
        )
        clipped = tmp_path / "clipped.trace.jsonl"
        lines = open(source, encoding="utf-8").readlines()
        clipped.write_text("".join(lines[:-1]), encoding="utf-8")
        assert main(["replay", str(clipped)]) == 2
        assert "no footer" in capsys.readouterr().err
        # --partial replays the intact prefix instead.
        assert main(["replay", str(clipped), "--partial"]) == 0

    def test_missing_file_errors_cleanly(self, capsys):
        assert main(["inspect", "/nonexistent/x.trace.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err
