"""Bitset kernel vs brute-force reference: query-for-query equivalence.

The bitset :class:`~repro.ccp.zigzag.ZigzagAnalysis` kernel must answer every
relation query identically to the message-level BFS reference
(:class:`~repro.ccp.zigzag.BruteForceZigzagAnalysis`), and the shared analysis
cache must reproduce the Theorem-1/2 retained sets of a literal, uncached
transcription of the theorems.  Both are checked across a corpus of seeded
random CCPs (crossing messages, zigzag cycles, in-transit messages, uneven
checkpoint rates) plus the paper's figures.

The incremental trace-recorder CCP is checked against a from-scratch
construction of the same log, including after a recovery truncation.
"""

import pytest

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.pattern import CCP
from repro.ccp.zigzag import BruteForceZigzagAnalysis, ZigzagAnalysis
from repro.scenarios.random_patterns import (
    feed_trace_recorder,
    random_ccp,
    random_ccp_script,
)
from repro.simulation.trace import TraceRecorder

SEEDS = list(range(60))


def _corpus_ccp(seed: int) -> CCP:
    # Vary shape with the seed so the corpus covers 2..6 processes and both
    # checkpoint-sparse and checkpoint-dense patterns.
    return random_ccp(
        seed,
        num_processes=2 + seed % 5,
        num_messages=20 + (seed * 7) % 45,
        checkpoint_rate=0.15 + 0.04 * (seed % 6),
        undelivered_fraction=0.15,
    )


def _all_general_ids(ccp: CCP):
    return [cid for pid in ccp.processes for cid in ccp.general_ids(pid)]


# ----------------------------------------------------------------------
# Literal transcriptions of Theorems 1 and 2 (independent of the cache)
# ----------------------------------------------------------------------
def _reference_theorem1_retained(ccp: CCP):
    retained = set()
    for pid in ccp.processes:
        for cid in ccp.stable_ids(pid):
            successor = CheckpointId(pid, cid.index + 1)
            for f in ccp.processes:
                if ccp.last_stable(f) < 0:
                    continue
                last = ccp.last_stable_id(f)
                if ccp.causally_precedes(last, successor) and not ccp.causally_precedes(
                    last, cid
                ):
                    retained.add(cid)
                    break
    return retained


def _reference_theorem2_retained(ccp: CCP):
    retained = set()
    for pid in ccp.processes:
        volatile = ccp.volatile_id(pid)
        for cid in ccp.stable_ids(pid):
            successor = CheckpointId(pid, cid.index + 1)
            for f in ccp.processes:
                last_known = -1
                for known in ccp.stable_ids(f):
                    if ccp.causally_precedes(known, volatile):
                        last_known = max(last_known, known.index)
                if last_known < 0:
                    continue
                known_cid = CheckpointId(f, last_known)
                if ccp.causally_precedes(known_cid, successor) and not (
                    ccp.causally_precedes(known_cid, cid)
                ):
                    retained.add(cid)
                    break
    return retained


class TestKernelMatchesBruteForce:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_zigzag_relation_pointwise(self, seed):
        ccp = _corpus_ccp(seed)
        kernel = ZigzagAnalysis(ccp)
        brute = BruteForceZigzagAnalysis(ccp)
        ids = _all_general_ids(ccp)
        for source in ids:
            for target in ids:
                assert kernel.zigzag_exists(source, target) == brute.zigzag_exists(
                    source, target
                ), f"seed {seed}: disagreement on {source} ~> {target}"

    @pytest.mark.parametrize("seed", SEEDS)
    def test_zigzag_pairs_and_useless_checkpoints(self, seed):
        ccp = _corpus_ccp(seed)
        kernel = ZigzagAnalysis(ccp)
        brute = BruteForceZigzagAnalysis(ccp)
        assert set(kernel.zigzag_pairs()) == set(brute.zigzag_pairs())
        assert kernel.useless_checkpoints() == brute.useless_checkpoints()

    @pytest.mark.parametrize("seed", SEEDS)
    def test_theorem_retained_sets_match_reference(self, seed):
        ccp = _corpus_ccp(seed)
        assert ccp.analyses.theorem1_retained == _reference_theorem1_retained(ccp)
        assert ccp.analyses.theorem2_retained == _reference_theorem2_retained(ccp)

    @pytest.mark.parametrize("seed", SEEDS[:20])
    def test_witness_paths_are_valid_zigzag_sequences(self, seed):
        ccp = _corpus_ccp(seed)
        kernel = ZigzagAnalysis(ccp)
        ids = _all_general_ids(ccp)
        for source in ids:
            for target in ids:
                if kernel.zigzag_exists(source, target):
                    witness = kernel.find_zigzag_path(source, target)
                    assert witness is not None
                    assert kernel.is_zigzag_sequence(
                        witness.message_ids, source, target
                    )

    def test_kernel_on_paper_figures(self, figure1_ccp, figure2_ccp):
        for ccp in (figure1_ccp, figure2_ccp):
            kernel = ZigzagAnalysis(ccp)
            brute = BruteForceZigzagAnalysis(ccp)
            assert set(kernel.zigzag_pairs()) == set(brute.zigzag_pairs())
            assert kernel.useless_checkpoints() == brute.useless_checkpoints()


class TestIncrementalTraceCcp:
    """trace.ccp() must equal a from-scratch CCP over the same log."""

    def _assert_equivalent(self, incremental: CCP, fresh: CCP):
        assert incremental.messages() == fresh.messages()
        ids = _all_general_ids(fresh)
        assert ids == _all_general_ids(incremental)
        for a in ids:
            for b in ids:
                assert incremental.causally_precedes(a, b) == fresh.causally_precedes(
                    a, b
                )
        kernel = ZigzagAnalysis(incremental)
        brute = BruteForceZigzagAnalysis(fresh)
        assert set(kernel.zigzag_pairs()) == set(brute.zigzag_pairs())

    @pytest.mark.parametrize("seed", SEEDS[:15])
    def test_matches_from_scratch_construction(self, seed):
        num_processes = 3 + seed % 3
        script = random_ccp_script(seed, num_processes=num_processes, num_messages=30)
        recorder = TraceRecorder(num_processes)
        feed_trace_recorder(recorder, script)
        incremental = recorder.ccp()
        fresh = CCP(recorder.log, recorded_dvs=recorder.recorded_checkpoint_dvs())
        self._assert_equivalent(incremental, fresh)

    def test_snapshot_is_cached_until_mutation(self):
        recorder = TraceRecorder(3)
        feed_trace_recorder(recorder, random_ccp_script(5, num_processes=3))
        first = recorder.ccp()
        assert recorder.ccp() is first  # same pattern, same analysis cache
        assert recorder.ccp().analyses is first.analyses
        recorder.record_internal(0, time=1e9)
        second = recorder.ccp()
        assert second is not first

    def test_volatile_dv_fingerprint_invalidates_cache(self):
        recorder = TraceRecorder(2)
        feed_trace_recorder(recorder, random_ccp_script(6, num_processes=2))
        with_dvs = recorder.ccp(volatile_dvs={0: (1, 0), 1: (0, 1)})
        assert recorder.ccp(volatile_dvs={0: (1, 0), 1: (0, 1)}) is with_dvs
        assert recorder.ccp(volatile_dvs={0: (2, 0), 1: (0, 1)}) is not with_dvs

    def test_incremental_state_survives_recovery_truncation(self):
        from repro.simulation.failures import FailureSchedule
        from repro.simulation.runner import SimulationConfig, SimulationRunner
        from repro.simulation.workloads import UniformRandomWorkload

        config = SimulationConfig(
            num_processes=3,
            duration=60.0,
            workload=UniformRandomWorkload(
                mean_message_gap=1.5, mean_checkpoint_gap=6.0
            ),
            failures=FailureSchedule.of([(30.0, 1)]),
            seed=11,
            audit="full",
        )
        runner = SimulationRunner(config)
        result = runner.run()
        assert result.recoveries  # the crash actually happened
        assert result.all_audits_safe
        incremental = runner.trace.ccp()
        fresh = CCP(
            runner.trace.log, recorded_dvs=runner.trace.recorded_checkpoint_dvs()
        )
        self._assert_equivalent(incremental, fresh)
