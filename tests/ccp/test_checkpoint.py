"""Unit tests for checkpoint identities and records."""

import pytest

from repro.ccp.checkpoint import Checkpoint, CheckpointId, CheckpointKind


class TestCheckpointId:
    def test_ordering_is_by_pid_then_index(self):
        assert CheckpointId(0, 5) < CheckpointId(1, 0)
        assert CheckpointId(1, 1) < CheckpointId(1, 2)

    def test_predecessor_and_successor(self):
        cid = CheckpointId(2, 3)
        assert cid.predecessor() == CheckpointId(2, 2)
        assert cid.successor() == CheckpointId(2, 4)

    def test_initial_checkpoint_has_no_predecessor(self):
        with pytest.raises(ValueError):
            CheckpointId(0, 0).predecessor()

    def test_string_form(self):
        assert str(CheckpointId(1, 2)) == "c1^2"


class TestCheckpoint:
    def test_stable_flags(self):
        ckpt = Checkpoint(pid=0, index=1, kind=CheckpointKind.STABLE, event_seq=4)
        assert ckpt.is_stable and not ckpt.is_volatile
        assert str(ckpt) == "s0^1"

    def test_volatile_flags(self):
        ckpt = Checkpoint(pid=2, index=3, kind=CheckpointKind.VOLATILE)
        assert ckpt.is_volatile and not ckpt.is_stable
        assert str(ckpt) == "v2"

    def test_checkpoint_id_property(self):
        ckpt = Checkpoint(pid=1, index=4, kind=CheckpointKind.STABLE, event_seq=0)
        assert ckpt.checkpoint_id == CheckpointId(1, 4)
