"""Tests for the rollback-dependency graph analysis utility."""

import pytest

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.rollback_graph import RollbackDependencyGraph


class TestRollbackGraph:
    def test_node_and_edge_counts(self, figure1_ccp):
        graph = RollbackDependencyGraph(figure1_ccp)
        # One node per general checkpoint: 7 stable + 3 volatile.
        assert graph.node_count() == 10
        # Per-process chains contribute 2 + 2 + 3 = 7 edges; the five messages
        # contribute 4 distinct interval edges (m2 and m4 connect the same
        # intervals and are merged).
        assert graph.edge_count() == 11

    def test_program_order_edges(self, figure1_ccp):
        graph = RollbackDependencyGraph(figure1_ccp)
        assert CheckpointId(0, 1) in graph.successors(CheckpointId(0, 0))

    def test_message_edges(self, figure1_ccp):
        graph = RollbackDependencyGraph(figure1_ccp)
        # m1 is sent in I_0^1 (starting at s0^0) and received in I_1^1 (starting at s1^0).
        assert CheckpointId(1, 0) in graph.successors(CheckpointId(0, 0))

    def test_reachability_matches_causality_under_rdt(self, figure1_ccp):
        """Under RDT, R-graph reachability from a stable checkpoint covers its causal successors."""
        graph = RollbackDependencyGraph(figure1_ccp)
        for pid in figure1_ccp.processes:
            for cid in figure1_ccp.stable_ids(pid):
                reachable = graph.reachable(cid)
                for other_pid in figure1_ccp.processes:
                    for other in figure1_ccp.general_ids(other_pid):
                        if figure1_ccp.causally_precedes(cid, other):
                            assert other in reachable

    def test_rollback_closure_includes_inputs(self, figure1_ccp):
        graph = RollbackDependencyGraph(figure1_ccp)
        closure = graph.rollback_closure([CheckpointId(0, 1)])
        assert CheckpointId(0, 1) in closure

    def test_rollback_closure_rejects_unknown(self, figure1_ccp):
        graph = RollbackDependencyGraph(figure1_ccp)
        with pytest.raises(KeyError):
            graph.rollback_closure([CheckpointId(0, 9)])

    def test_domino_effect_closure_in_figure2(self, figure2_ccp):
        """Rolling back p0's first checkpoint invalidates everything after the initial state."""
        graph = RollbackDependencyGraph(figure2_ccp)
        closure = graph.rollback_closure([CheckpointId(0, 1)])
        assert CheckpointId(1, 1) in closure
        assert CheckpointId(0, 2) in closure
