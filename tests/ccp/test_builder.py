"""Tests for the fluent CCP builder."""

import pytest

from repro.ccp.builder import CCPBuilder
from repro.ccp.checkpoint import CheckpointId


class TestBuilderBasics:
    def test_initial_checkpoints_taken_automatically(self):
        ccp = CCPBuilder(3).build()
        for pid in range(3):
            assert ccp.last_stable(pid) == 0

    def test_initial_checkpoints_can_be_disabled(self):
        builder = CCPBuilder(2, initial_checkpoints=False)
        ccp = builder.build()
        assert ccp.last_stable(0) == -1
        assert ccp.volatile_index(0) == 0

    def test_requires_positive_process_count(self):
        with pytest.raises(ValueError):
            CCPBuilder(0)

    def test_checkpoint_returns_sequential_ids(self):
        builder = CCPBuilder(1)
        assert builder.checkpoint(0) == CheckpointId(0, 1)
        assert builder.checkpoint(0) == CheckpointId(0, 2)

    def test_duplicate_message_tags_rejected(self):
        builder = CCPBuilder(2)
        builder.send(0, 1, tag="m")
        with pytest.raises(ValueError):
            builder.send(0, 1, tag="m")

    def test_receive_of_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            CCPBuilder(2).receive("nope")

    def test_auto_tags_are_unique(self):
        builder = CCPBuilder(2)
        tags = {builder.send(0, 1) for _ in range(5)}
        assert len(tags) == 5

    def test_message_exchange_delivers(self):
        builder = CCPBuilder(2)
        builder.message_exchange(0, 1, tag="m")
        ccp = builder.build()
        assert len(ccp.messages()) == 1

    def test_undelivered_message_not_in_ccp(self):
        builder = CCPBuilder(2)
        builder.send(0, 1, tag="lost")
        ccp = builder.build()
        assert ccp.messages() == []

    def test_tags_listed_in_creation_order(self):
        builder = CCPBuilder(2)
        builder.send(0, 1, tag="a")
        builder.send(1, 0, tag="b")
        assert builder.tags() == ["a", "b"]


class TestBuilderDependencyTracking:
    def test_dv_propagation_matches_section_4_2(self):
        builder = CCPBuilder(2)
        # After the initial checkpoints, p0's DV is (1, 0) and p1's is (0, 1).
        assert builder.current_dv(0) == (1, 0)
        assert builder.current_dv(1) == (0, 1)
        builder.message_exchange(0, 1, tag="m")
        assert builder.current_dv(1) == (1, 1)

    def test_checkpoint_stores_pre_increment_vector(self):
        builder = CCPBuilder(2)
        builder.message_exchange(0, 1, tag="m")
        cid = builder.checkpoint(1)
        ccp = builder.build()
        assert ccp.checkpoint(cid).dependency_vector == (1, 1)

    def test_tracking_disabled(self):
        builder = CCPBuilder(2, track_dependency_vectors=False)
        with pytest.raises(ValueError):
            builder.current_dv(0)
        ccp = builder.build()
        # Ground truth is still available.
        assert ccp.dv(CheckpointId(0, 0)) == (0, 0)

    def test_recorded_volatile_dv_attached(self):
        builder = CCPBuilder(2)
        builder.message_exchange(0, 1, tag="m")
        ccp = builder.build()
        assert ccp.checkpoint(ccp.volatile_id(1)).dependency_vector == (1, 1)


class TestBuilderRecordedVsGroundTruth:
    def test_recorded_vectors_match_ground_truth_on_rdt_pattern(self, figure1_ccp):
        for pid in figure1_ccp.processes:
            for cid in figure1_ccp.general_ids(pid):
                recorded = figure1_ccp.checkpoint(cid).dependency_vector
                assert recorded == figure1_ccp.ground_truth_dv(cid)
