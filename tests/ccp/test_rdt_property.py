"""Tests for the RDT property checker (Definition 4)."""

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.rdt import check_rdt


class TestRdtChecker:
    def test_figure1_is_rd_trackable(self, figure1_ccp):
        report = check_rdt(figure1_ccp)
        assert report.is_rdt
        assert bool(report)
        assert report.violations == []

    def test_figure1_without_m3_is_not_rd_trackable(self, figure1_without_m3_ccp):
        report = check_rdt(figure1_without_m3_ccp)
        assert not report.is_rdt
        violating_pairs = {(v.source, v.target) for v in report.violations}
        # The paper: without m3, s1^1 ~> s3^2 but s1^1 -/-> s3^2.
        assert (CheckpointId(0, 1), CheckpointId(2, 2)) in violating_pairs

    def test_violation_witnesses_are_valid_zigzag_paths(self, figure1_without_m3_ccp):
        from repro.ccp.zigzag import ZigzagAnalysis

        report = check_rdt(figure1_without_m3_ccp)
        analysis = ZigzagAnalysis(figure1_without_m3_ccp)
        for violation in report.violations:
            assert violation.witness is not None
            assert analysis.is_zigzag_sequence(
                violation.witness.message_ids, violation.source, violation.target
            )

    def test_witness_collection_can_be_disabled(self, figure1_without_m3_ccp):
        report = check_rdt(figure1_without_m3_ccp, collect_witnesses=False)
        assert all(v.witness is None for v in report.violations)

    def test_figure2_violations_include_zigzag_cycles(self, figure2_ccp):
        report = check_rdt(figure2_ccp)
        assert not report.is_rdt
        assert CheckpointId(0, 1) in report.useless_checkpoints

    def test_figure3_is_rd_trackable(self, figure3_ccp):
        assert check_rdt(figure3_ccp).is_rdt

    def test_figure4_is_rd_trackable(self, figure4_ccp):
        assert check_rdt(figure4_ccp).is_rdt

    def test_pattern_with_no_messages_is_trivially_rdt(self):
        from repro.ccp.builder import CCPBuilder

        builder = CCPBuilder(3)
        for _ in range(2):
            for pid in range(3):
                builder.checkpoint(pid)
        assert check_rdt(builder.build()).is_rdt
