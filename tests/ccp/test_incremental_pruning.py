"""Delta-maintained analyses and obsolescence pruning vs full recompute.

Property corpus for the incremental subsystem: a pruning
:class:`~repro.simulation.trace.TraceRecorder` fed an execution in chunks
must answer every analysis — Theorem-1/2 retained sets, Lemma-1 recovery
lines, the zigzag relation — exactly as an identically-fed unpruned twin
does over the surviving (live) checkpoint window, at every instant of the
churn schedule.  ``"check"`` mode recorders cross-assert the incremental and
classic answers internally; the blocked bitset kernel is additionally pinned
to the brute-force reference on *pruned* (based) logs, where closures start
at per-process base intervals rather than zero; and the numpy backend must
agree with the big-int backend bit for bit.

Simulation-level churn (crashes, recovery truncation, index reuse, pruning
interleaved with rollback-driven eliminations) is covered by running the
same seeded simulation twice — pruned and unpruned — and comparing final
analyses, plus replay-verifying the persisted trace of a pruned run, which
must remain a complete, faithful artifact (pruning is invisible to sinks).
"""

import pytest

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.zigzag import BruteForceZigzagAnalysis, ZigzagAnalysis
from repro.scenarios.random_patterns import TraceFeeder, random_ccp_script
from repro.simulation.trace import TraceRecorder

SEEDS = list(range(40))


def _script(seed: int):
    return random_ccp_script(
        seed,
        num_processes=2 + seed % 5,
        num_messages=25 + (seed * 7) % 40,
        checkpoint_rate=0.15 + 0.04 * (seed % 6),
        undelivered_fraction=0.15,
    )


def _chunks(script, parts=5):
    size = max(1, len(script) // parts)
    for start in range(0, len(script), size):
        yield script[start : start + size]


def _eliminate_theorem1_garbage(recorder: TraceRecorder) -> None:
    """The churn driver: report everything Theorem 1 proves obsolete."""
    ccp = recorder.ccp()
    retained = ccp.analyses.theorem1_retained
    for pid in range(recorder.num_processes):
        for index in range(ccp.base_interval(pid), recorder.checkpoints_taken[pid] - 1):
            if CheckpointId(pid, index) not in retained:
                recorder.record_elimination(pid, index)


def _live_ids(recorder: TraceRecorder):
    bases = recorder.log.checkpoint_bases
    return [
        CheckpointId(pid, index)
        for pid in range(recorder.num_processes)
        for index in range(bases[pid], recorder.checkpoints_taken[pid] + 1)
    ]


class TestPrunedEqualsFullRecompute:
    """Pruned recorder vs identically-fed unpruned twin, instant by instant."""

    @pytest.mark.parametrize("seed", SEEDS)
    def test_analyses_agree_on_live_window(self, seed):
        script = _script(seed)
        num_processes = 2 + seed % 5
        pruned = TraceRecorder(num_processes, prune=True, prune_threshold=8)
        full = TraceRecorder(num_processes)
        pruned_feeder, full_feeder = TraceFeeder(pruned), TraceFeeder(full)
        for chunk in _chunks(script):
            pruned_feeder.feed(chunk)
            full_feeder.feed(chunk)
            pruned_ccp = pruned.ccp()
            truth_ccp = full.ccp()
            bases = pruned.log.checkpoint_bases

            def live(ids):
                return {cid for cid in ids if cid.index >= bases[cid.pid]}

            assert pruned_ccp.analyses.theorem1_retained == live(
                truth_ccp.analyses.theorem1_retained
            ), f"seed {seed}"
            assert pruned_ccp.analyses.theorem2_retained == live(
                truth_ccp.analyses.theorem2_retained
            ), f"seed {seed}"
            for faulty in range(num_processes):
                assert pruned_ccp.analyses.recovery_line(
                    {faulty}
                ) == truth_ccp.analyses.recovery_line({faulty}), f"seed {seed}"
            _eliminate_theorem1_garbage(pruned)
        # Force a final compaction and re-check the full analysis surface on
        # the maximally-pruned log.
        pruned.maybe_prune(force=True)
        pruned_ccp = pruned.ccp()
        truth_ccp = full.ccp()
        bases = pruned.log.checkpoint_bases
        assert pruned_ccp.analyses.theorem1_retained == {
            cid
            for cid in truth_ccp.analyses.theorem1_retained
            if cid.index >= bases[cid.pid]
        }
        for faulty in range(num_processes):
            assert pruned_ccp.analyses.recovery_line(
                {faulty}
            ) == truth_ccp.analyses.recovery_line({faulty})

    def test_pruning_fires_across_corpus(self):
        """The threshold heuristic must not starve: most seeds actually prune."""
        fired = 0
        for seed in SEEDS:
            script = _script(seed)
            recorder = TraceRecorder(2 + seed % 5, prune=True, prune_threshold=8)
            feeder = TraceFeeder(recorder)
            for chunk in _chunks(script):
                feeder.feed(chunk)
                _eliminate_theorem1_garbage(recorder)
            recorder.maybe_prune(force=True)
            if recorder.pruned_events > 0:
                fired += 1
        assert fired >= len(SEEDS) // 2

    @pytest.mark.parametrize("seed", SEEDS[::4])
    def test_zigzag_relation_exact_on_live_pairs(self, seed):
        script = _script(seed)
        num_processes = 2 + seed % 5
        pruned = TraceRecorder(num_processes, prune=True, prune_threshold=8)
        full = TraceRecorder(num_processes)
        pruned_feeder, full_feeder = TraceFeeder(pruned), TraceFeeder(full)
        for chunk in _chunks(script):
            pruned_feeder.feed(chunk)
            full_feeder.feed(chunk)
            pruned_zz = pruned.ccp().analyses.zigzag
            truth_zz = full.ccp().analyses.zigzag
            ids = _live_ids(pruned)
            for a in ids:
                for b in ids:
                    assert pruned_zz.zigzag_exists(a, b) == truth_zz.zigzag_exists(
                        a, b
                    ), f"seed {seed}: {a} ~> {b}"
            assert pruned_zz.zigzag_pair_count() == len(pruned_zz.zigzag_pairs())
            _eliminate_theorem1_garbage(pruned)


class TestCheckModeCrossAsserts:
    """``"check"`` recorders compare incremental vs classic at every query."""

    @pytest.mark.parametrize("seed", SEEDS[::3])
    def test_chunked_feed_with_queries(self, seed):
        script = _script(seed)
        num_processes = 2 + seed % 5
        recorder = TraceRecorder(num_processes, incremental_analyses="check")
        feeder = TraceFeeder(recorder)
        for chunk in _chunks(script):
            feeder.feed(chunk)
            ccp = recorder.ccp()
            # Each access runs the incremental view AND the classic oracle
            # and raises on any mismatch.
            ccp.analyses.theorem1_retained
            ccp.analyses.theorem2_retained
            for faulty in range(num_processes):
                ccp.analyses.recovery_line({faulty})


class TestKernelOnBasedLogs:
    """Blocked kernel vs brute force on pruned patterns (nonzero bases)."""

    def _pruned_ccp(self, seed):
        script = _script(seed)
        num_processes = 2 + seed % 5
        recorder = TraceRecorder(num_processes, prune=True, prune_threshold=8)
        feeder = TraceFeeder(recorder)
        for chunk in _chunks(script):
            feeder.feed(chunk)
            recorder.ccp()
            _eliminate_theorem1_garbage(recorder)
        return recorder.ccp(), recorder

    @pytest.mark.parametrize("seed", SEEDS[::4])
    def test_bigint_kernel_matches_brute_force(self, seed):
        ccp, recorder = self._pruned_ccp(seed)
        kernel = ZigzagAnalysis(ccp, kernel="bigint")
        brute = BruteForceZigzagAnalysis(ccp)
        assert set(kernel.zigzag_pairs()) == set(brute.zigzag_pairs())
        assert kernel.useless_checkpoints() == brute.useless_checkpoints()

    @pytest.mark.parametrize("seed", SEEDS[::4])
    def test_numpy_backend_matches_bigint(self, seed):
        pytest.importorskip("numpy")
        ccp, recorder = self._pruned_ccp(seed)
        bigint = ZigzagAnalysis(ccp, kernel="bigint")
        numpy_kernel = ZigzagAnalysis(ccp, kernel="numpy")
        assert numpy_kernel.kernel == "numpy"
        assert set(numpy_kernel.zigzag_pairs()) == set(bigint.zigzag_pairs())
        assert (
            numpy_kernel.useless_checkpoints() == bigint.useless_checkpoints()
        )
        ids = _live_ids(recorder)
        for a in ids:
            for b in ids:
                assert numpy_kernel.zigzag_exists(a, b) == bigint.zigzag_exists(a, b)


class TestChurnSchedules:
    """Crash/recovery churn: pruning + truncation rebuilds + index reuse."""

    def _run(self, seed, *, prune, crashes, incremental="off"):
        from repro.simulation.failures import FailureSchedule
        from repro.simulation.runner import SimulationConfig, SimulationRunner
        from repro.simulation.workloads import UniformRandomWorkload

        config = SimulationConfig(
            num_processes=4,
            duration=150.0,
            workload=UniformRandomWorkload(
                mean_message_gap=1.0, mean_checkpoint_gap=5.0
            ),
            failures=FailureSchedule.of(crashes),
            seed=seed,
            audit="full",
            prune_trace=prune,
            incremental_analyses=incremental,
        )
        runner = SimulationRunner(config)
        result = runner.run()
        return runner, result

    @pytest.mark.parametrize("seed", range(6))
    def test_pruned_run_matches_unpruned_twin_after_churn(self, seed):
        crashes = [(50.0, seed % 4), (100.0, (seed + 2) % 4)]
        pruned_runner, pruned_result = self._run(seed, prune=True, crashes=crashes)
        full_runner, full_result = self._run(seed, prune=False, crashes=crashes)
        assert len(pruned_result.recoveries) == 2
        # The simulation itself is deterministic in the seed: recording mode
        # must not leak into execution.
        assert [r.recovery_line for r in pruned_result.recoveries] == [
            r.recovery_line for r in full_result.recoveries
        ]
        assert pruned_result.all_audits_safe and pruned_result.all_audits_optimal
        assert full_result.all_audits_safe and full_result.all_audits_optimal
        pruned_ccp = pruned_runner.current_ccp()
        truth_ccp = full_runner.current_ccp()
        bases = pruned_runner.trace.log.checkpoint_bases
        live_t1 = {
            cid
            for cid in truth_ccp.analyses.theorem1_retained
            if cid.index >= bases[cid.pid]
        }
        assert pruned_ccp.analyses.theorem1_retained == live_t1
        for faulty in range(4):
            assert pruned_ccp.analyses.recovery_line(
                {faulty}
            ) == truth_ccp.analyses.recovery_line({faulty})

    @pytest.mark.parametrize("seed", range(4))
    def test_check_mode_survives_recovery_truncation(self, seed):
        crashes = [(60.0, seed % 4), (110.0, (seed + 1) % 4)]
        runner, result = self._run(
            seed, prune=False, crashes=crashes, incremental="check"
        )
        assert len(result.recoveries) == 2
        assert result.all_audits_safe
        ccp = runner.current_ccp()
        ccp.analyses.theorem1_retained
        ccp.analyses.theorem2_retained
        for faulty in range(4):
            ccp.analyses.recovery_line({faulty})

    def test_pruned_run_trace_replays_and_verifies(self, tmp_path):
        """Sinks see the full history: a pruned run's trace stays complete."""
        from repro.simulation.failures import FailureSchedule
        from repro.simulation.runner import SimulationConfig, run_simulation
        from repro.simulation.workloads import UniformRandomWorkload
        from repro.traceio.cli import main as traceio_main

        path = str(tmp_path / "pruned_run.trace.jsonl")
        config = SimulationConfig(
            num_processes=4,
            duration=120.0,
            workload=UniformRandomWorkload(
                mean_message_gap=1.0, mean_checkpoint_gap=5.0
            ),
            failures=FailureSchedule.of([(60.0, 1)]),
            seed=3,
            audit="full",
            prune_trace=True,
            trace_path=path,
        )
        result = run_simulation(config)
        assert result.recoveries
        assert traceio_main(["replay", path, "--verify"]) == 0


class TestFeederResync:
    def test_resync_follows_recorder_frontier(self):
        recorder = TraceRecorder(2)
        feeder = TraceFeeder(recorder)
        feeder.feed([("checkpoint", 0), ("checkpoint", 0)])
        assert recorder.checkpoints_taken == (3, 1)
        feeder.resync()
        feeder.feed([("checkpoint", 0)])
        assert recorder.checkpoints_taken == (4, 1)
