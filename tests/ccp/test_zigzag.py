"""Tests for zigzag paths, Z-paths, C-paths and useless checkpoints (Definition 3)."""

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.zigzag import ZigzagAnalysis


class TestFigure1Paths:
    """The path classifications the paper states for Figure 1."""

    def _ids(self, builder):
        return {tag: builder.message_id(tag) for tag in builder.tags()}

    def test_m1_m2_is_a_causal_path(self, figure1_ccp):
        analysis = ZigzagAnalysis(figure1_ccp)
        m1 = 0  # message ids follow send order: m1, m2, m4, m5, m3
        m2 = 1
        assert analysis.is_zigzag_sequence([m1, m2], CheckpointId(0, 0), CheckpointId(2, 2))
        assert analysis.is_causal_sequence([m1, m2])

    def test_m1_m4_is_a_causal_path(self, figure1_ccp):
        analysis = ZigzagAnalysis(figure1_ccp)
        m1, m4 = 0, 2
        assert analysis.is_zigzag_sequence([m1, m4], CheckpointId(0, 0), CheckpointId(2, 2))
        assert analysis.is_causal_sequence([m1, m4])

    def test_m5_m4_is_a_non_causal_z_path(self, figure1_ccp):
        analysis = ZigzagAnalysis(figure1_ccp)
        m4, m5 = 2, 3
        assert analysis.is_zigzag_sequence([m5, m4], CheckpointId(0, 1), CheckpointId(2, 2))
        assert not analysis.is_causal_sequence([m5, m4])

    def test_zigzag_relation_from_s1_1_to_s3_2(self, figure1_ccp):
        analysis = ZigzagAnalysis(figure1_ccp)
        assert analysis.zigzag_exists(CheckpointId(0, 1), CheckpointId(2, 2))

    def test_find_zigzag_path_returns_a_valid_witness(self, figure1_ccp):
        analysis = ZigzagAnalysis(figure1_ccp)
        path = analysis.find_zigzag_path(CheckpointId(0, 1), CheckpointId(2, 2))
        assert path is not None
        assert analysis.is_zigzag_sequence(
            path.message_ids, CheckpointId(0, 1), CheckpointId(2, 2)
        )

    def test_no_zigzag_between_concurrent_checkpoints(self, figure1_ccp):
        analysis = ZigzagAnalysis(figure1_ccp)
        assert not analysis.zigzag_exists(CheckpointId(1, 1), CheckpointId(2, 1))

    def test_no_useless_checkpoints_in_figure1(self, figure1_ccp):
        assert ZigzagAnalysis(figure1_ccp).useless_checkpoints() == []

    def test_empty_sequence_is_not_a_zigzag_path(self, figure1_ccp):
        analysis = ZigzagAnalysis(figure1_ccp)
        assert not analysis.is_zigzag_sequence([], CheckpointId(0, 0), CheckpointId(1, 1))


class TestFigure2Cycles:
    """Figure 2: crossing ping-pong messages create zigzag cycles."""

    def test_non_initial_checkpoints_are_useless(self, figure2_ccp):
        useless = set(ZigzagAnalysis(figure2_ccp).useless_checkpoints())
        assert CheckpointId(0, 1) in useless
        assert CheckpointId(0, 2) in useless
        assert CheckpointId(1, 1) in useless

    def test_initial_checkpoints_are_not_useless(self, figure2_ccp):
        useless = set(ZigzagAnalysis(figure2_ccp).useless_checkpoints())
        assert CheckpointId(0, 0) not in useless
        assert CheckpointId(1, 0) not in useless

    def test_z_cycle_query(self, figure2_ccp):
        analysis = ZigzagAnalysis(figure2_ccp)
        assert analysis.has_zigzag_cycle(CheckpointId(0, 1))
        assert not analysis.has_zigzag_cycle(CheckpointId(0, 0))


class TestZigzagConsistencyWithCausality:
    def test_causal_precedence_implies_zigzag_when_messages_exist(self, figure1_ccp):
        """Every C-path is in particular a zigzag path (for message-connected pairs)."""
        analysis = ZigzagAnalysis(figure1_ccp)
        pairs = analysis.zigzag_pairs()
        # zigzag_pairs must at least contain all message-induced causal pairs
        assert (CheckpointId(0, 0), CheckpointId(1, 1)) in pairs
        assert (CheckpointId(0, 0), CheckpointId(2, 2)) in pairs

    def test_zigzag_pairs_matches_pointwise_queries(self, figure1_ccp):
        analysis = ZigzagAnalysis(figure1_ccp)
        pairs = set(analysis.zigzag_pairs())
        all_ids = [
            cid
            for pid in figure1_ccp.processes
            for cid in figure1_ccp.general_ids(pid)
        ]
        for source in all_ids:
            for target in all_ids:
                assert ((source, target) in pairs) == analysis.zigzag_exists(source, target)
