"""Tests for the CCP structure: general checkpoints, intervals, causal precedence."""

import pytest

from repro.causality.events import EventId
from repro.ccp.builder import CCPBuilder
from repro.ccp.checkpoint import CheckpointId


class TestStructure:
    def test_last_stable_and_volatile_index(self, figure1_ccp):
        assert figure1_ccp.last_stable(0) == 1
        assert figure1_ccp.volatile_index(0) == 2
        assert figure1_ccp.last_stable(2) == 2
        assert figure1_ccp.volatile_index(2) == 3

    def test_stable_and_general_ids(self, figure1_ccp):
        assert figure1_ccp.stable_ids(0) == [CheckpointId(0, 0), CheckpointId(0, 1)]
        assert figure1_ccp.general_ids(0)[-1] == figure1_ccp.volatile_id(0)

    def test_total_stable_checkpoints(self, figure1_ccp):
        assert figure1_ccp.total_stable_checkpoints() == 7

    def test_checkpoint_lookup_and_kind(self, figure1_ccp):
        stable = figure1_ccp.checkpoint(CheckpointId(0, 1))
        assert stable.is_stable
        volatile = figure1_ccp.checkpoint(figure1_ccp.volatile_id(0))
        assert volatile.is_volatile

    def test_unknown_checkpoint_rejected(self, figure1_ccp):
        with pytest.raises(KeyError):
            figure1_ccp.checkpoint(CheckpointId(0, 9))
        with pytest.raises(KeyError):
            figure1_ccp.causally_precedes(CheckpointId(0, 9), CheckpointId(0, 0))

    def test_last_stable_id_requires_a_stable_checkpoint(self):
        ccp = CCPBuilder(1, initial_checkpoints=False).build()
        with pytest.raises(ValueError):
            ccp.last_stable_id(0)

    def test_all_checkpoints_counts_stable_plus_volatile(self, figure1_ccp):
        assert len(figure1_ccp.all_checkpoints()) == 7 + 3


class TestIntervals:
    def test_interval_of_events(self):
        builder = CCPBuilder(2)
        builder.send(0, 1, tag="m1")      # p0 interval 1
        builder.checkpoint(0)             # s0^1
        builder.send(0, 1, tag="m2")      # p0 interval 2
        builder.receive("m1")             # p1 interval 1
        builder.checkpoint(1)             # s1^1
        builder.receive("m2")             # p1 interval 2
        ccp = builder.build()
        messages = {m.message_id: m for m in ccp.messages()}
        assert messages[0].send_interval == 1
        assert messages[0].receive_interval == 1
        assert messages[1].send_interval == 2
        assert messages[1].receive_interval == 2

    def test_checkpoint_event_belongs_to_the_interval_it_opens(self):
        builder = CCPBuilder(1)
        ccp = builder.build()
        checkpoint_event = ccp.log.history(0)[0]
        # s^0 opens interval 1 (I^1 includes c^0 but not c^1).
        assert ccp.interval_of_event(checkpoint_event) == 1

    def test_interval_of_event_by_id(self, figure1_ccp):
        event = figure1_ccp.log.history(0)[0]
        assert figure1_ccp.interval_of_event(EventId(0, 0)) == figure1_ccp.interval_of_event(event)


class TestCausalPrecedence:
    def test_same_process_order(self, figure1_ccp):
        assert figure1_ccp.causally_precedes(CheckpointId(0, 0), CheckpointId(0, 1))
        assert not figure1_ccp.causally_precedes(CheckpointId(0, 1), CheckpointId(0, 0))

    def test_figure1_message_induced_precedence(self, figure1_ccp):
        # s1^0 -> s2^1 (via m1), the inconsistency the paper points out.
        assert figure1_ccp.causally_precedes(CheckpointId(0, 0), CheckpointId(1, 1))
        # s1^1 -> s3^2 (via m3), the doubling that keeps the pattern RDT.
        assert figure1_ccp.causally_precedes(CheckpointId(0, 1), CheckpointId(2, 2))
        # s2^1 and s3^1 are not related.
        assert figure1_ccp.consistent(CheckpointId(1, 1), CheckpointId(2, 1))

    def test_volatile_precedes_nothing(self, figure1_ccp):
        volatile = figure1_ccp.volatile_id(0)
        for pid in figure1_ccp.processes:
            for cid in figure1_ccp.general_ids(pid):
                assert not figure1_ccp.causally_precedes(volatile, cid)

    def test_every_checkpoint_precedes_own_volatile(self, figure1_ccp):
        for pid in figure1_ccp.processes:
            volatile = figure1_ccp.volatile_id(pid)
            for cid in figure1_ccp.stable_ids(pid):
                assert figure1_ccp.causally_precedes(cid, volatile)

    def test_no_self_precedence(self, figure1_ccp):
        for pid in figure1_ccp.processes:
            for cid in figure1_ccp.general_ids(pid):
                assert not figure1_ccp.causally_precedes(cid, cid)


class TestDependencyVectors:
    def test_equation_two_ground_truth_vs_causal_relation(self, figure1_ccp):
        """Equation (2): c_a^alpha -> c_b^beta iff alpha < DV(c_b^beta)[a]."""
        ccp = figure1_ccp
        all_ids = [cid for pid in ccp.processes for cid in ccp.general_ids(pid)]
        for source in all_ids:
            if ccp.is_volatile(source):
                continue
            for target in all_ids:
                if source == target:
                    continue
                dv = ccp.ground_truth_dv(target)
                assert ccp.causally_precedes(source, target) == (source.index < dv[source.pid])

    def test_recorded_dv_preferred_over_ground_truth(self, figure1_ccp):
        cid = CheckpointId(1, 1)
        assert figure1_ccp.dv(cid) == figure1_ccp.checkpoint(cid).dependency_vector

    def test_own_entry_equals_index(self, figure1_ccp):
        for pid in figure1_ccp.processes:
            for cid in figure1_ccp.general_ids(pid):
                assert figure1_ccp.ground_truth_dv(cid)[pid] == cid.index
