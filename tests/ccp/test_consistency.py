"""Tests for consistent global checkpoints and min/max queries."""

import pytest

from repro.ccp.checkpoint import CheckpointId
from repro.ccp.consistency import (
    GlobalCheckpoint,
    all_consistent_global_checkpoints,
    is_consistent_global_checkpoint,
    max_consistent_global_checkpoint,
    min_consistent_global_checkpoint,
)


class TestGlobalCheckpoint:
    def test_of_mapping_and_sequence(self):
        assert GlobalCheckpoint.of({0: 1, 1: 2}) == GlobalCheckpoint((1, 2))
        assert GlobalCheckpoint.of([1, 2]).indices == (1, 2)

    def test_of_sparse_mapping_rejected(self):
        # A missing pid used to be silently padded with index 0; it is a
        # caller error (one component per process is required).
        with pytest.raises(ValueError, match="process\\(es\\) \\[1\\]"):
            GlobalCheckpoint.of({0: 1, 2: 2})
        with pytest.raises(ValueError, match="empty"):
            GlobalCheckpoint.of({})

    def test_members(self):
        gc = GlobalCheckpoint((1, 0))
        assert list(gc.members()) == [CheckpointId(0, 1), CheckpointId(1, 0)]

    def test_rolled_back_count(self, figure1_ccp):
        line = GlobalCheckpoint((0, 0, 0))
        # p0 loses 2 general checkpoints (s^1 and v), p1 loses 2, p2 loses 3.
        assert line.rolled_back_count(figure1_ccp) == 7


class TestConsistencyChecks:
    def test_paper_examples_from_figure1(self, figure1_ccp):
        consistent = GlobalCheckpoint((figure1_ccp.volatile_index(0), 1, 1))
        inconsistent = GlobalCheckpoint((0, 1, 1))
        assert is_consistent_global_checkpoint(figure1_ccp, consistent)
        assert not is_consistent_global_checkpoint(figure1_ccp, inconsistent)

    def test_zigzag_method_agrees_on_rdt_pattern(self, figure1_ccp):
        for candidate in all_consistent_global_checkpoints(figure1_ccp):
            assert is_consistent_global_checkpoint(
                figure1_ccp, candidate, method="zigzag"
            )

    def test_unknown_method_rejected(self, figure1_ccp):
        with pytest.raises(ValueError):
            is_consistent_global_checkpoint(
                figure1_ccp, GlobalCheckpoint((0, 0, 0)), method="nope"
            )

    def test_wrong_size_rejected(self, figure1_ccp):
        with pytest.raises(ValueError):
            is_consistent_global_checkpoint(figure1_ccp, GlobalCheckpoint((0, 0)))

    def test_unknown_member_rejected(self, figure1_ccp):
        with pytest.raises(KeyError):
            is_consistent_global_checkpoint(figure1_ccp, GlobalCheckpoint((9, 0, 0)))

    def test_initial_line_always_consistent(self, figure2_ccp):
        assert is_consistent_global_checkpoint(figure2_ccp, GlobalCheckpoint((0, 0)))


class TestMinMaxQueries:
    def test_max_without_constraints_is_all_volatile_when_consistent(self, figure1_ccp):
        result = max_consistent_global_checkpoint(figure1_ccp)
        assert result is not None
        assert result.indices == tuple(
            figure1_ccp.volatile_index(pid) for pid in figure1_ccp.processes
        )

    def test_max_with_fixed_member(self, figure1_ccp):
        result = max_consistent_global_checkpoint(figure1_ccp, fixed={0: 0})
        assert result is not None
        assert result.indices[0] == 0
        assert is_consistent_global_checkpoint(figure1_ccp, result)
        # It must dominate every other consistent global checkpoint with that member.
        for candidate in all_consistent_global_checkpoints(figure1_ccp):
            if candidate.indices[0] == 0:
                assert all(a <= b for a, b in zip(candidate.indices, result.indices))

    def test_min_with_fixed_member(self, figure1_ccp):
        result = min_consistent_global_checkpoint(figure1_ccp, fixed={1: 1})
        assert result is not None
        assert result.indices[1] == 1
        assert is_consistent_global_checkpoint(figure1_ccp, result)
        for candidate in all_consistent_global_checkpoints(figure1_ccp):
            if candidate.indices[1] == 1:
                assert all(a >= b for a, b in zip(candidate.indices, result.indices))

    def test_min_without_constraints_is_all_initial(self, figure1_ccp):
        result = min_consistent_global_checkpoint(figure1_ccp)
        assert result is not None
        assert result.indices == (0, 0, 0)

    def test_fixed_checkpoint_must_exist(self, figure1_ccp):
        with pytest.raises(KeyError):
            max_consistent_global_checkpoint(figure1_ccp, fixed={0: 9})

    def test_queries_on_figure3(self, figure3_ccp):
        result = max_consistent_global_checkpoint(figure3_ccp, fixed={1: 1})
        assert result is not None
        assert is_consistent_global_checkpoint(figure3_ccp, result)
