"""End-to-end tests of ``python -m repro.explore`` (run/sweep/replay)."""

from __future__ import annotations

import os

from repro.explore.cli import main


class TestRun:
    def test_clean_configuration_exits_zero(self, capsys):
        code = main(["run", "--processes", "2", "--messages", "2"])
        assert code == 0
        output = capsys.readouterr().out
        assert "rdt-lgc" in output
        assert "complete schedules" in output

    def test_budget_knob_reports_exhaustion(self, capsys):
        code = main(
            ["run", "--processes", "2", "--messages", "4", "--max-executions", "40"]
        )
        assert code == 0
        assert "budget exhausted" in capsys.readouterr().out

    def test_no_reduction_knob_explores_more(self, capsys):
        main(["run", "--processes", "2", "--messages", "2"])
        reduced = capsys.readouterr().out
        main(["run", "--processes", "2", "--messages", "2", "--no-reduction"])
        full = capsys.readouterr().out

        def executions(output):
            for line in output.splitlines():
                if "executions" in line:
                    return int(line.split("executions")[0].split()[-1])
            raise AssertionError(f"no executions count in {output!r}")

        assert executions(full) > executions(reduced)


class TestSweepWithCanaries:
    def test_canary_sweep_catches_exactly_the_canaries(self, capsys, tmp_path):
        traces = str(tmp_path / "counterexamples")
        code = main(
            [
                "sweep",
                "--processes", "2",
                "--messages", "4",
                "--protocols", "fdas",
                "--collectors", "rdt-lgc,canary-unsafe,canary-hoarder",
                "--canaries",
                "--max-executions", "2000",
                "--expect-violations", "2",
                "--traces", traces,
            ]
        )
        output = capsys.readouterr().out
        assert code == 0, output
        assert "2 with violations" in output
        names = sorted(os.listdir(traces))
        assert names == [
            "fdas-canary-hoarder.trace.jsonl",
            "fdas-canary-unsafe.trace.jsonl",
        ]

    def test_replay_of_a_persisted_counterexample(self, capsys, tmp_path):
        traces = str(tmp_path / "counterexamples")
        assert main(
            [
                "sweep",
                "--processes", "2",
                "--messages", "4",
                "--protocols", "fdas",
                "--collectors", "canary-unsafe",
                "--canaries",
                "--max-executions", "2000",
                "--expect-violations", "1",
                "--traces", traces,
            ]
        ) == 0
        capsys.readouterr()
        path = os.path.join(traces, "fdas-canary-unsafe.trace.jsonl")
        assert main(["replay", path]) == 0
        output = capsys.readouterr().out
        assert "byte-identical re-execution: yes" in output
        assert "safety" in output

    def test_unexpected_violation_count_fails(self, capsys):
        code = main(
            [
                "sweep",
                "--processes", "2",
                "--messages", "2",
                "--protocols", "fdas",
                "--collectors", "rdt-lgc",
                "--expect-violations", "1",
            ]
        )
        assert code == 1
        assert "expected exactly 1" in capsys.readouterr().err


class TestSmoke:
    def test_smoke_sweep_is_exhaustive_and_clean(self, capsys):
        # One protocol keeps the tier-1 copy of the gate fast; CI's gates job
        # runs the full-grid `sweep --smoke` without the restriction.
        code = main(
            ["sweep", "--smoke", "--quiet", "--protocols", "fdas",
             "--collectors", "rdt-lgc,none"]
        )
        output = capsys.readouterr().out
        assert code == 0, output
        assert "0 with violations" in output
