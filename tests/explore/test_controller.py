"""The ScheduleController hook: custody, determinism and error paths."""

from __future__ import annotations

import pytest

from repro.explore.controller import PendingDeliveries
from repro.simulation.engine import SimulationEngine
from repro.simulation.network import Network, NetworkConfig


def _wired_network(engine, config=None):
    network = Network(engine, config)
    delivered = []
    network.on_app_delivery(lambda m: delivered.append(m.message_id))
    network.on_duplicate_delivery(lambda m: delivered.append(("dup", m.message_id)))
    return network, delivered


class TestCustody:
    def test_copies_are_parked_not_engine_scheduled(self):
        engine = SimulationEngine(seed=3)
        network, delivered = _wired_network(engine)
        controller = PendingDeliveries(network)
        network.send_app_message(0, 1, (0, 0))
        network.send_app_message(1, 0, (0, 0))
        assert engine.pending_events() == 0  # nothing on the engine queue
        assert controller.pending_message_ids() == [0, 1]
        assert controller.receiver(0) == 1
        assert controller.receiver(1) == 0
        engine.run()
        assert delivered == []  # running the engine delivers nothing

    def test_release_delivers_in_the_chosen_order(self):
        engine = SimulationEngine(seed=3)
        network, delivered = _wired_network(engine)
        controller = PendingDeliveries(network)
        for _ in range(3):
            network.send_app_message(0, 1, (0, 0))
        controller.deliver(2)
        controller.deliver(0)
        controller.deliver(1)
        assert delivered == [2, 0, 1]
        assert controller.pending_message_ids() == []
        assert network.stats.app_delivered == 3

    def test_fate_sampling_is_unchanged_by_the_controller(self):
        """The controller owns order, not fate: the same per-link draws are
        consumed, so the sampled delivery times match the uncontrolled run."""
        config = NetworkConfig(base_latency=1.0, jitter=0.7)
        free_engine = SimulationEngine(seed=11)
        free = Network(free_engine, config)
        arrival = {}
        free.on_app_delivery(
            lambda m: arrival.__setitem__(m.message_id, free_engine.now)
        )
        for _ in range(4):
            free.send_app_message(0, 1, (0, 0))
        free_engine.run()

        controlled_engine = SimulationEngine(seed=11)
        controlled = Network(controlled_engine, config)
        controlled.on_app_delivery(lambda m: None)
        sampled = {}

        class Spy(PendingDeliveries):
            def on_copy_in_flight(self, delivery_id, message, sampled_delivery_time):
                sampled[message.message_id] = sampled_delivery_time
                super().on_copy_in_flight(delivery_id, message, sampled_delivery_time)

        Spy(controlled)
        for _ in range(4):
            controlled.send_app_message(0, 1, (0, 0))
        assert sampled == arrival

    def test_drop_in_flight_reclaims_custody(self):
        engine = SimulationEngine(seed=3)
        network, _ = _wired_network(engine)
        controller = PendingDeliveries(network)
        network.send_app_message(0, 1, (0, 0))
        network.send_app_message(0, 1, (0, 0))
        assert network.drop_in_flight() == 2
        assert controller.pending_message_ids() == []
        assert controller.discarded_message_ids() == [0, 1]
        with pytest.raises(ValueError, match="not pending"):
            controller.deliver(0)


class TestErrors:
    def test_double_attach_is_rejected(self):
        engine = SimulationEngine(seed=0)
        network, _ = _wired_network(engine)
        PendingDeliveries(network)
        with pytest.raises(RuntimeError, match="already attached"):
            PendingDeliveries(network)

    def test_release_without_controller_is_rejected(self):
        engine = SimulationEngine(seed=0)
        network, _ = _wired_network(engine)
        with pytest.raises(RuntimeError, match="requires an attached"):
            network.release_delivery(0)

    def test_duplicating_channels_are_rejected(self):
        from repro.simulation.channels import DuplicatingChannel, UniformChannel

        engine = SimulationEngine(seed=1)
        network, _ = _wired_network(
            engine,
            NetworkConfig(
                channel=DuplicatingChannel(
                    channel=UniformChannel(), duplicate_probability=1.0
                )
            ),
        )
        PendingDeliveries(network)
        with pytest.raises(RuntimeError, match="duplication-free"):
            network.send_app_message(0, 1, (0, 0))

    def test_engine_peek_time(self):
        engine = SimulationEngine(seed=0)
        assert engine.peek_time() is None
        engine.schedule_at(4.0, lambda: None)
        engine.schedule_at(2.5, lambda: None)
        assert engine.peek_time() == 2.5
        engine.run()
        assert engine.peek_time() is None
