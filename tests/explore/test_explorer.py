"""The schedule-space explorer: enumeration, reduction, budget, oracles."""

from __future__ import annotations

import os

import pytest

from repro.explore import (
    ExploreConfig,
    OracleStack,
    checkpoint,
    explore,
    gossip_program,
    ring_program,
    send,
    star_program,
    validate_schedule,
)
from repro.protocols.registry import available_protocols


def _tiny(messages=2, **kwargs):
    return ExploreConfig(
        num_processes=2, program=ring_program(2, messages), **kwargs
    )


class TestEnumeration:
    def test_exhaustive_walk_is_deterministic(self):
        results = [explore(_tiny()) for _ in range(2)]
        a, b = (r.stats.as_dict() for r in results)
        assert a == b
        assert results[0].ok and results[1].ok
        assert results[0].stats.complete

    def test_every_message_generates_delivery_branching(self):
        # 2 messages: strictly more schedules than the single linear order.
        stats = explore(_tiny()).stats
        assert stats.schedules > 1
        assert stats.deepest == len(_tiny().program) + 2  # steps + deliveries

    def test_reduction_prunes_but_preserves_the_verdict(self):
        full = explore(_tiny(), reduction=False)
        reduced = explore(_tiny())
        assert full.ok and reduced.ok
        assert reduced.stats.executions < full.stats.executions
        assert full.stats.sleep_pruned == 0
        assert reduced.stats.sleep_pruned > 0

    def test_exhaustive_schedule_count_without_reduction(self):
        # One message, program [send, ckpt, ckpt]: the delivery slots in at
        # any of the 3 positions after the send => 3 complete schedules.
        config = ExploreConfig(
            num_processes=2,
            program=(send(0, 1), checkpoint(0), checkpoint(1)),
        )
        result = explore(config, reduction=False)
        assert result.ok
        assert result.stats.schedules == 3


class TestBudget:
    def test_budget_stops_with_a_deterministic_frontier(self):
        runs = [explore(_tiny(4), max_executions=50) for _ in range(2)]
        for result in runs:
            assert not result.stats.complete
            assert result.stats.executions == 50
            assert result.stats.frontier is not None
        assert runs[0].stats.frontier == runs[1].stats.frontier

    def test_larger_budget_extends_the_walk(self):
        small = explore(_tiny(4), max_executions=50)
        large = explore(_tiny(4), max_executions=200)
        assert large.stats.executions > small.stats.executions

    def test_unbudgeted_walk_reports_complete(self):
        result = explore(_tiny())
        assert result.stats.complete
        assert result.stats.frontier is None


class TestCrashConfigurations:
    def test_rdt_lgc_survives_every_crash_interleaving(self):
        config = ExploreConfig(
            num_processes=2,
            program=ring_program(2, 2, crash_pid=0),
        )
        result = explore(config)
        assert result.ok, result.first and str(result.first.violation)
        assert result.stats.complete

    def test_recovery_line_oracle_rejects_a_bogus_line(self):
        from repro.simulation.runner import (
            RecoveryRecord,
            SimulationConfig,
            SimulationRunner,
        )
        from repro.simulation.workloads import ScriptedWorkload

        runner = SimulationRunner(
            SimulationConfig(
                num_processes=2, duration=10.0, workload=ScriptedWorkload([])
            )
        )
        for node in runner.nodes:
            node.start()
        # A line naming the faulty process's volatile index is invalid.
        record = RecoveryRecord(
            time=1.0,
            faulty=(0,),
            recovery_line=(99, 0),
            rolled_back_processes=0,
            lost_general_checkpoints=0,
            collected_during_recovery=0,
        )
        violation = OracleStack().check_recovery(
            runner.current_ccp(), record, step=1
        )
        assert violation is not None and violation.kind == "recovery-line"


class TestScheduleValidation:
    def test_well_formed_schedule_passes(self):
        config = _tiny()
        validate_schedule(config, [("a", 0), ("a", 1), ("d", 0)])

    @pytest.mark.parametrize(
        "schedule, message",
        [
            ([("d", 0)], "has not been sent"),
            ([("a", 1)], "expected program step 0"),
            ([("a", 0), ("d", 0), ("d", 0)], "delivered twice"),
            ([("x", 0)], "unknown kind"),
        ],
    )
    def test_malformed_schedules_are_rejected(self, schedule, message):
        with pytest.raises(ValueError, match=message):
            validate_schedule(_tiny(), schedule)

    def test_program_validation(self):
        with pytest.raises(ValueError, match="references process"):
            ExploreConfig(num_processes=2, program=(send(0, 5),))
        with pytest.raises(ValueError, match="target"):
            send(0, None)  # type: ignore[arg-type]


class TestOracleDerivation:
    def test_optimality_follows_collector_and_protocol(self):
        assert OracleStack.for_config(_tiny()).check_optimality
        assert not OracleStack.for_config(_tiny(collector="none")).check_optimality
        assert not OracleStack.for_config(
            _tiny(protocol="uncoordinated")
        ).check_optimality

    def test_rdt_follows_the_protocol(self):
        assert OracleStack.for_config(_tiny()).check_rdt
        assert not OracleStack.for_config(_tiny(protocol="uncoordinated")).check_rdt


class TestFoundFailureModes:
    """The Manivannan–Singhal window violation as a *found* counterexample.

    The stand-in's unsafety under a violated timing assumption was
    previously staged (campaign cells with a tight window and injected
    crashes at magic seeds); here the explorer *derives* the failing
    delivery order: an early delivery pins the sender's old checkpoint as
    Theorem-1-required on behalf of a process that has not checkpointed
    since, and the time-window prune then discards it.
    """

    VIOLATED_WINDOW = (
        ("checkpoint_period", 2.0),
        ("max_message_delay", 0.5),
        ("slack", 0.5),
    )

    def _program(self):
        # p1 checkpoints only at the very end, so p0's early checkpoints
        # stay required on p1's behalf long past the (violated) window.
        return (
            send(1, 0),
            checkpoint(0),
            send(0, 1),
            send(1, 0),
            checkpoint(0),
            send(0, 1),
            checkpoint(1),
            checkpoint(0),
        )

    def test_window_violation_is_found_and_shrinks(self):
        from repro.explore import shrink

        config = ExploreConfig(
            num_processes=2,
            program=self._program(),
            collector="manivannan-singhal",
            collector_options=self.VIOLATED_WINDOW,
        )
        result = explore(config, max_executions=20000)
        assert not result.ok
        violation = result.first.violation
        assert violation.kind == "safety"
        assert "Theorem-1-required" in violation.detail
        shrunk = shrink(result.first.config, result.first.schedule, violation)
        assert shrunk.trace_events <= 12
        # The failing order needs the early delivery: at least one delivery
        # token survives shrinking.
        assert any(token[0] == "d" for token in shrunk.schedule)

    def test_honoured_window_sweeps_clean_on_the_same_program(self):
        config = ExploreConfig(
            num_processes=2,
            program=self._program(),
            collector="manivannan-singhal",
            collector_options=(("checkpoint_period", 50.0),),
        )
        result = explore(config, max_executions=20000)
        assert result.ok


class TestTopologyPrograms:
    """The star and gossip program families (topology workload skeletons)."""

    def test_star_program_shape(self):
        program = star_program(3, 2)
        sends = [s for s in program if s.kind.value == "send"]
        # Each request has a hub reply; clients alternate.
        assert [(s.pid, s.target) for s in sends] == [
            (1, 0), (0, 1), (2, 0), (0, 2),
        ]

    def test_star_program_validation(self):
        with pytest.raises(ValueError, match="hub"):
            star_program(1, 2)
        with pytest.raises(ValueError):
            star_program(3, -1)

    def test_gossip_program_shape(self):
        program = gossip_program(3, 2, fanout=2)
        sends = [s for s in program if s.kind.value == "send"]
        assert [(s.pid, s.target) for s in sends] == [
            (0, 1), (0, 2), (1, 2), (1, 0),
        ]

    def test_gossip_program_validation(self):
        with pytest.raises(ValueError, match="fanout"):
            gossip_program(3, 2, fanout=3)
        with pytest.raises(ValueError):
            gossip_program(3, -1)

    def test_star_crash_explores_clean(self):
        config = ExploreConfig(
            num_processes=2, program=star_program(2, 1, crash_pid=0)
        )
        result = explore(config)
        assert result.ok and result.stats.complete

    def test_gossip_explores_clean(self):
        config = ExploreConfig(num_processes=3, program=gossip_program(3, 1))
        result = explore(config)
        assert result.ok and result.stats.complete

    def test_sweep_config_program_families(self):
        from repro.scenarios.experiments import explore_sweep_configs

        for family in ("ring", "star", "gossip"):
            configs = explore_sweep_configs(
                num_processes=3,
                messages=4,
                protocols=("fdas",),
                collectors=(("rdt-lgc", {}),),
                program_family=family,
            )
            assert len(configs) == 1 and configs[0].program
        with pytest.raises(ValueError, match="unknown program family"):
            explore_sweep_configs(program_family="mesh")


class TestAcceptanceSweep:
    """The acceptance configuration: 2 processes x 6 messages.

    Tier-1 explores every protocol exhaustively at 4 messages (identical
    code paths, seconds) and walks a deterministic 6-message frontier; with
    ``EXPLORE_EXHAUSTIVE=1`` — set by CI's gates job, the nightly workflow
    and `python -m repro.explore sweep` verification runs — the 6-message
    walk is exhaustive across every registered protocol.
    """

    def test_all_protocols_are_clean_at_four_messages(self):
        for protocol in available_protocols():
            config = ExploreConfig(
                num_processes=2,
                program=ring_program(2, 4, checkpoint_every=3),
                protocol=protocol,
            )
            result = explore(config)
            assert result.stats.complete
            assert result.ok, (
                f"{protocol}: {result.first and result.first.violation}"
            )

    def test_rdt_lgc_is_clean_on_the_6_message_configuration(self):
        exhaustive = os.environ.get("EXPLORE_EXHAUSTIVE") == "1"
        budget = None if exhaustive else 2500
        protocols = available_protocols() if exhaustive else ["fdas"]
        for protocol in protocols:
            config = ExploreConfig(
                num_processes=2,
                program=ring_program(2, 6),
                protocol=protocol,
            )
            result = explore(config, max_executions=budget)
            assert result.ok, (
                f"{protocol}: {result.first and result.first.violation}"
            )
            if exhaustive:
                assert result.stats.complete
                assert result.stats.schedules > 1000  # a genuine schedule *space*
            else:
                assert result.stats.executions == budget  # deterministic frontier
