"""Conformance canary suite: the oracles must catch seeded collector bugs.

Mutation-testing the verification subsystem itself: two deliberately broken
collectors — one unsafe (discards a Theorem-1-required checkpoint under a
reordered delivery), one non-optimal (retains a Theorem-2-obsolete one) —
must be caught by the explorer *within a fixed budget*, while RDT-LGC passes
the identical sweep clean.  The found violations shrink to small
counterexamples (≤ 12 events) whose persisted traces replay byte-identically.
"""

from __future__ import annotations

import pytest

from repro.explore import (
    CANARY_NAMES,
    ExploreConfig,
    canaries_registered,
    explore,
    persist_counterexample,
    replay_counterexample,
    ring_program,
    shrink,
)
from repro.gc.registry import available_collectors

#: The fixed budget the conformance suite promises detection within.
CANARY_BUDGET = 2000

#: The shared sweep configuration (identical for canaries and RDT-LGC).
def _sweep_config(collector: str) -> ExploreConfig:
    return ExploreConfig(
        num_processes=2, program=ring_program(2, 4), collector=collector
    )


@pytest.fixture(scope="module")
def caught():
    """Explore both canaries once; shared by the assertion tests below."""
    found = {}
    with canaries_registered():
        for name in CANARY_NAMES:
            result = explore(_sweep_config(name), max_executions=CANARY_BUDGET)
            found[name] = result
    return found


class TestCanariesAreCaught:
    def test_registration_is_scoped(self):
        with canaries_registered() as names:
            registered = available_collectors()
            assert all(name in registered for name in names)
        registered = available_collectors()
        assert all(name not in registered for name in CANARY_NAMES)

    def test_unsafe_canary_violates_safety_within_budget(self, caught):
        result = caught["canary-unsafe"]
        assert not result.ok
        assert result.stats.executions <= CANARY_BUDGET
        assert result.first.violation.kind == "safety"
        assert "Theorem-1-required" in result.first.violation.detail

    def test_hoarder_canary_violates_optimality_within_budget(self, caught):
        result = caught["canary-hoarder"]
        assert not result.ok
        assert result.stats.executions <= CANARY_BUDGET
        assert result.first.violation.kind == "optimality"
        assert "Theorem-2-obsolete" in result.first.violation.detail

    def test_rdt_lgc_passes_the_same_sweep_clean(self):
        result = explore(_sweep_config("rdt-lgc"))
        assert result.stats.complete  # exhaustive, not budget-cut
        assert result.ok


class TestShrinkingAndReplay:
    @pytest.fixture(scope="class")
    def shrunk_pair(self, caught):
        with canaries_registered():
            return {
                name: shrink(
                    caught[name].first.config,
                    caught[name].first.schedule,
                    caught[name].first.violation,
                )
                for name in CANARY_NAMES
            }

    def test_counterexamples_shrink_below_twelve_events(self, shrunk_pair):
        for name, shrunk in shrunk_pair.items():
            assert shrunk.trace_events <= 12, (
                f"{name}: shrunk to {shrunk.trace_events} events"
            )
            assert shrunk.violation.kind in ("safety", "optimality")

    def test_shrunk_counterexamples_are_one_minimal(self, shrunk_pair):
        """Removing any single delivery from the shrunk schedule kills the
        violation (the shrinking fixpoint invariant)."""
        from repro.explore import DELIVER, ScheduleExecutor

        with canaries_registered():
            for name, shrunk in shrunk_pair.items():
                for position, token in enumerate(shrunk.schedule):
                    if token[0] != DELIVER:
                        continue
                    candidate = (
                        shrunk.schedule[:position] + shrunk.schedule[position + 1:]
                    )
                    outcome = ScheduleExecutor(shrunk.config).execute(candidate)
                    assert (
                        outcome.violation is None
                        or outcome.violation.kind != shrunk.violation.kind
                    ), f"{name}: dropping token {position} kept the violation"

    def test_persisted_counterexamples_replay_byte_identically(
        self, shrunk_pair, tmp_path
    ):
        with canaries_registered():
            for name, shrunk in shrunk_pair.items():
                path = str(tmp_path / f"{name}.trace.jsonl")
                recurred = persist_counterexample(shrunk, path)
                assert recurred.kind == shrunk.violation.kind
                replay = replay_counterexample(path)
                assert replay.byte_identical
                assert replay.replayed_violation.kind == shrunk.violation.kind
                assert replay.recorded_violation["kind"] == shrunk.violation.kind

    def test_persisted_artifact_is_a_valid_traceio_trace(self, shrunk_pair, tmp_path):
        from repro.traceio.reader import TraceReader

        with canaries_registered():
            shrunk = shrunk_pair["canary-unsafe"]
            path = str(tmp_path / "unsafe.trace.jsonl")
            persist_counterexample(shrunk, path)
        replayed = TraceReader(path).replay()
        assert replayed.status == "aborted"  # sealed with the violation
        assert "violation" in (replayed.footer or {}).get("error", "")
        assert replayed.recorder.log.total_events() == shrunk.trace_events
        meta = replayed.meta["explorer"]
        assert meta["config"]["collector"] == "canary-unsafe"
        assert meta["violation"]["kind"] == shrunk.violation.kind

    def test_replay_without_provenance_is_rejected(self, tmp_path):
        from repro.traceio.writer import TraceWriter

        path = str(tmp_path / "plain.trace.jsonl")
        writer = TraceWriter.scripted(path, 2)
        writer.seal()
        with pytest.raises(ValueError, match="no explorer provenance"):
            replay_counterexample(path)


class TestExplorerSweepWithCanaries:
    def test_sweep_flags_exactly_the_canaries(self):
        """One shared sweep over {rdt-lgc} + canaries: the canaries are the
        only dirty cells (this is the CLI's --expect-violations contract)."""
        from repro.explore import sweep

        with canaries_registered():
            configs = [
                _sweep_config(name) for name in ("rdt-lgc",) + CANARY_NAMES
            ]
            entries = sweep(configs, max_executions=CANARY_BUDGET)
        verdicts = {entry.collector: entry.result.ok for entry in entries}
        assert verdicts == {
            "rdt-lgc": True,
            "canary-unsafe": False,
            "canary-hoarder": False,
        }
