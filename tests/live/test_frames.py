"""Wire codecs of the live backend: frames, datagrams, payload packing."""

from __future__ import annotations

import asyncio
import struct

import pytest

from repro.live.frames import (
    MAX_FRAME,
    decode_datagram,
    encode_datagram,
    encode_frame,
    pack_payload,
    read_frame,
    unpack_payload,
)


def _reader_with(data: bytes) -> asyncio.StreamReader:
    reader = asyncio.StreamReader()
    if data:
        reader.feed_data(data)
    reader.feed_eof()
    return reader


def _read(data: bytes):
    async def scenario():
        return await read_frame(_reader_with(data))

    return asyncio.run(scenario())


class TestFrames:
    def test_round_trip(self):
        doc = {"type": "init", "peers": {"0": 1234}, "actions": [[1.5, "send", 2]]}
        assert _read(encode_frame(doc)) == doc

    def test_multiple_frames_in_sequence(self):
        docs = [{"type": "hello", "pid": 0}, {"type": "go", "at_virtual_time": 0.0}]

        async def scenario():
            reader = _reader_with(b"".join(encode_frame(doc) for doc in docs))
            return [await read_frame(reader) for _ in docs]

        assert asyncio.run(scenario()) == docs

    def test_eof_returns_none(self):
        assert _read(b"") is None

    def test_torn_frame_returns_none(self):
        """A SIGKILL mid-write leaves a partial frame: a clean close, not an error."""
        whole = encode_frame({"type": "final", "pid": 2})
        assert _read(whole[: len(whole) - 3]) is None
        assert _read(whole[:2]) is None

    def test_oversized_frame_rejected(self):
        data = struct.pack(">I", MAX_FRAME + 1) + b"x"
        with pytest.raises(ValueError):
            _read(data)


class TestDatagrams:
    def test_round_trip(self):
        doc = {"t": "app", "m": 7, "s": 0, "r": 1, "pb": [1, 2, 3], "e": 0, "l": 9}
        assert decode_datagram(encode_datagram(doc)) == doc

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            decode_datagram(b"\xff\x00 not json")


class TestPayloadPacking:
    def test_tuples_survive(self):
        """Control payloads are pickled: tuples must NOT come back as lists."""
        payload = {"dv": (3, 1, 4), "round": 2}
        unpacked = unpack_payload(pack_payload(payload))
        assert unpacked == payload
        assert isinstance(unpacked["dv"], tuple)

    def test_none_payload(self):
        assert unpack_payload(pack_payload(None)) is None
