"""Shard write/read and the shard → artifact merge pipeline."""

from __future__ import annotations

import json

import pytest

from repro.live.merge import (
    StorageMirror,
    ordered_entries,
    replay_entries,
    shard_counters,
)
from repro.live.shard import ShardWriter, read_shard
from repro.recovery.manager import RecoveryManager
from repro.simulation.trace import TraceRecorder


def _write_pair(tmp_path):
    """Two shards of a two-process exchange: 0 sends m1 to 1."""
    paths = [str(tmp_path / f"w{pid}.shard.jsonl") for pid in (0, 1)]
    w0 = ShardWriter(paths[0], pid=0, num_processes=2)
    w1 = ShardWriter(paths[1], pid=1, num_processes=2)
    w0.record_checkpoint(0, 0, (1, 0), forced=False, time=0.0)
    w1.record_checkpoint(1, 0, (0, 1), forced=False, time=0.0)
    w0.record_send(0, 1, 1, 1.0)
    # The receiver's clock merges the sender's, as the transport does on
    # every datagram, so the receive sorts after the send globally.
    w1.merge_clock(w0.lamport)
    w1.record_receive(1, 2.0)
    w1.record_checkpoint(1, 1, (1, 2), forced=True, time=2.5)
    return paths, w0, w1


class TestShardRoundTrip:
    def test_complete_shard(self, tmp_path):
        paths, w0, w1 = _write_pair(tmp_path)
        w0.close()
        w1.close()
        s0, s1 = read_shard(paths[0]), read_shard(paths[1])
        assert s0.complete and s1.complete
        assert s0.pid == 0 and s1.pid == 1
        assert [e.record[0] for e in s0.entries] == ["c", "s"]
        assert [e.record[0] for e in s1.entries] == ["c", "r", "c"]

    def test_killed_writer_leaves_readable_prefix(self, tmp_path):
        paths, w0, w1 = _write_pair(tmp_path)
        # No close(): the SIGKILL case — no footer, everything recorded stays.
        s0 = read_shard(paths[0])
        assert not s0.complete
        assert len(s0.entries) == 2

    def test_torn_final_line_tolerated(self, tmp_path):
        paths, w0, w1 = _write_pair(tmp_path)
        w0.close()
        with open(paths[0], "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        torn = "\n".join(lines[:-2] + [lines[-2][: len(lines[-2]) // 2]])
        with open(paths[0], "w", encoding="utf-8") as handle:
            handle.write(torn)
        shard = read_shard(paths[0])
        assert not shard.complete
        assert len(shard.entries) == 1  # the torn record is dropped

    def test_elimination_records_round_trip(self, tmp_path):
        path = str(tmp_path / "e.shard.jsonl")
        writer = ShardWriter(path, pid=0, num_processes=2)
        writer.record_checkpoint(0, 0, (1, 0), forced=False, time=0.0)
        writer.record_elimination(0, 0)
        writer.close()
        shard = read_shard(path)
        assert [e.record[0] for e in shard.entries] == ["c", "e"]

    def test_lamport_monotone_and_epoch_stamped(self, tmp_path):
        path = str(tmp_path / "l.shard.jsonl")
        writer = ShardWriter(path, pid=0, num_processes=2, lamport=10)
        writer.record_internal(0, 0.5)
        writer.set_epoch(1, lamport_floor=50)
        writer.record_internal(0, 1.5)
        writer.close()
        entries = read_shard(path).entries
        assert [(e.epoch, e.lamport) for e in entries] == [(0, 11), (1, 51)]

    def test_rejects_non_shard_file(self, tmp_path):
        path = tmp_path / "not.jsonl"
        path.write_text(json.dumps({"format": "repro-trace"}) + "\n")
        with pytest.raises(ValueError):
            read_shard(str(path))


class TestMerge:
    def test_global_order_is_causal(self, tmp_path):
        paths, w0, w1 = _write_pair(tmp_path)
        w0.close()
        w1.close()
        entries = ordered_entries([read_shard(p) for p in paths])
        tags = [e.record[0] for e in entries]
        # The send must precede its receive in the merged order.
        assert tags.index("s") < tags.index("r")

    def test_replay_builds_consistent_recorder(self, tmp_path):
        paths, w0, w1 = _write_pair(tmp_path)
        w0.close()
        w1.close()
        recorder = replay_entries(
            ordered_entries([read_shard(p) for p in paths]), 2
        )
        assert isinstance(recorder, TraceRecorder)
        assert recorder.log.total_events() == 5
        ccp = recorder.ccp(volatile_dvs={0: (2, 0), 1: (1, 3)})
        plan = RecoveryManager().plan(ccp, [1])
        assert plan.recovery_line.indices[1] >= 0

    def test_counters_cover_killed_incarnations(self, tmp_path):
        paths, w0, w1 = _write_pair(tmp_path)
        w1.close()  # w0 left open: its process was SIGKILLed
        counters = shard_counters([read_shard(p) for p in paths])
        assert counters == {
            "sent": 1,
            "delivered": 1,
            "duplicates": 0,
            "basic_checkpoints": 2,
            "forced_checkpoints": 1,
        }


class TestStorageMirror:
    def test_restore_spec_reconstructs_storage(self):
        mirror = StorageMirror(2)
        mirror.apply_store(0, 0, (1, 0), False, 0.0)
        mirror.apply_store(0, 1, (2, 0), False, 1.0)
        mirror.apply_store(0, 2, (3, 1), True, 2.0)
        mirror.apply_elimination(0, 1)
        spec = mirror.restore_spec(0, 2, (3, 1))
        assert [s[0] for s in spec["stores"]] == [0, 1, 2]
        assert spec["eliminated"] == [1]
        assert spec["rollback_index"] == 2
        assert spec["last_interval_vector"] == [3, 1]

    def test_missing_checkpoint_is_an_error(self):
        mirror = StorageMirror(2)
        mirror.apply_store(0, 0, (1, 0), False, 0.0)
        with pytest.raises(RuntimeError):
            mirror.restore_spec(0, 1, (1, 0))

    def test_plan_truncates_retained(self):
        mirror = StorageMirror(2)
        for index in range(4):
            mirror.apply_store(1, index, (0, index + 1), False, float(index))
        ccp_recorder = TraceRecorder(2)
        for index in range(4):
            ccp_recorder.record_checkpoint(
                1, index, (0, index + 1), forced=False, time=float(index)
            )
        ccp_recorder.record_checkpoint(0, 0, (1, 0), forced=False, time=0.0)
        plan = RecoveryManager().plan(
            ccp_recorder.ccp(volatile_dvs={0: (1, 0), 1: (0, 5)}), [1]
        )
        mirror.apply_plan(plan)
        rollback = plan.rollback_for(1)
        assert rollback is not None
        assert max(mirror.retained[1]) == rollback.rollback_index
