"""End-to-end live runs: real processes, real sockets, real SIGKILLs.

The acceptance gate of the live backend: a 3-process run with message loss
and one crash/recover produces a merged v2 trace that passes
``verify_trace``, re-merges byte-identically from its shards, and runs
clean under the Theorem-4 safety oracle for RDT-LGC.

These tests spawn real subprocesses; each run takes roughly a second of
wall time (duration × time_scale plus handshakes).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.live import LiveOptions, run_live
from repro.live.merge import ordered_entries, replay_entries
from repro.live.shard import read_shard
from repro.simulation.failures import FailureSchedule
from repro.simulation.network import NetworkConfig
from repro.simulation.runner import SimulationConfig, run_simulation
from repro.simulation.workloads import make_workload
from repro.traceio import TraceReader, TraceWriter, verify_trace

pytestmark = pytest.mark.live


OPTIONS = LiveOptions(time_scale=0.02)


def _config(tmp_path, **overrides):
    defaults = dict(
        num_processes=3,
        duration=30.0,
        workload=make_workload("uniform-random"),
        protocol="fdas",
        collector="rdt-lgc",
        network=NetworkConfig(drop_probability=0.1),
        failures=FailureSchedule.none(),
        seed=0,
        audit="safety",
        backend="live",
        trace_path=str(tmp_path / "live.trace.jsonl"),
    )
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def _remerge(live, header, out_path):
    """Re-merge the run's shards into a second artifact, deterministically."""
    shards = [read_shard(path) for path in live.shard_paths]
    plans = dict(enumerate(TraceReader(live.trace_path).replay().recovery_plans))
    writer = TraceWriter(out_path, header=header)
    replay_entries(ordered_entries(shards), header["num_processes"], plans=plans, sink=writer)
    writer.seal()


def _body_records(path):
    """The raw body record lines (everything between header and footer)."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.read().splitlines()
    return [line for line in lines[1:] if not line.startswith("{")]


class TestLiveEndToEnd:
    def test_loss_and_crash_recover(self, tmp_path):
        """The ISSUE acceptance run: loss + one SIGKILL crash/recover."""
        config = _config(tmp_path, failures=FailureSchedule.of([(12.0, 1)]))
        live = run_live(config, OPTIONS)
        result = live.result

        # One real recovery session happened and was recorded.
        assert len(result.recoveries) == 1
        recovery = result.recoveries[0]
        assert recovery.faulty == (1,)
        assert recovery.rolled_back_processes >= 1

        # The merged artifact satisfies every v2 invariant.
        assert verify_trace(live.trace_path) == []

        # It replays: the recovery session comes back as a RollbackPlan.
        replayed = TraceReader(live.trace_path).replay()
        assert len(replayed.recovery_plans) == 1
        assert tuple(replayed.recovery_plans[0].faulty) == (1,)
        assert replayed.metrics == result.metrics_dict()

        # Theorem-4 safety oracle: no eliminated checkpoint was needed.
        assert result.audits and result.all_audits_safe

        # The merge is a pure function of shards + plans: re-merging
        # reproduces the artifact's body byte for byte.
        second = str(tmp_path / "remerged.trace.jsonl")
        _remerge(live, replayed.header, second)
        assert _body_records(second) == _body_records(live.trace_path)

        # The crashed worker has two incarnations on disk; its first shard
        # has no footer (SIGKILL) yet contributed everything it recorded.
        shards = [read_shard(path) for path in live.shard_paths]
        assert len(shards) == 4
        killed = [s for s in shards if s.pid == 1 and not s.complete]
        assert len(killed) == 1
        assert killed[0].entries

    def test_clean_run_verifies_and_audits(self, tmp_path):
        config = _config(tmp_path, duration=20.0)
        live = run_live(config, OPTIONS)
        result = live.result
        assert result.messages_sent > 0
        assert result.messages_delivered > 0
        assert result.recoveries == []
        assert verify_trace(live.trace_path) == []
        assert result.audits and result.all_audits_safe
        # Real loss happened (drop_probability=0.1 over dozens of sends) and
        # the books balance: every send was delivered, dropped, or in flight
        # at the stop barrier.
        assert result.messages_delivered + result.messages_dropped <= result.messages_sent

    def test_run_simulation_dispatches_live_backend(self, tmp_path):
        config = _config(tmp_path, duration=15.0, network=NetworkConfig())
        result = run_simulation(config)
        assert result.config.backend == "live"
        assert result.messages_delivered > 0

    def test_coordinated_collector_over_real_control_plane(self, tmp_path):
        """Control rounds (reliable UDP control datagrams) collect garbage."""
        config = _config(
            tmp_path,
            collector="wang-coordinated",
            collector_options={"period": 8.0},
            network=NetworkConfig(drop_probability=0.05),
        )
        result = run_live(config, OPTIONS).result
        assert result.control_messages > 0
        assert result.total_collected > 0
        assert result.all_audits_safe

    def test_provenance_identifies_live_run(self, tmp_path):
        from repro.traceio.format import RunProvenance

        config = _config(tmp_path, duration=15.0)
        live = run_live(config, OPTIONS)
        header = TraceReader(live.trace_path).header()
        assert header["backend"] == "live"
        provenance = RunProvenance.from_meta(header["meta"])
        assert provenance is not None and provenance.kind == "live"
        assert provenance.fields["processes"] == 3

    def test_campaign_meta_keeps_campaign_shape(self, tmp_path):
        """A traced live campaign cell must still parse as campaign provenance."""
        from repro.traceio.format import RunProvenance

        meta = RunProvenance.campaign_cell(
            campaign="c", cell_id="deadbeef", params={"collector": "rdt-lgc"}
        ).to_meta()
        config = dataclasses.replace(_config(tmp_path, duration=15.0), trace_meta=meta)
        live = run_live(config, OPTIONS)
        header = TraceReader(live.trace_path).header()
        provenance = RunProvenance.from_meta(header["meta"])
        assert provenance is not None and provenance.kind == "campaign"
        assert header["meta"]["live_backend"]["processes"] == 3
