"""Unit tests for the checkpointing protocol policies."""

import pytest

from repro.protocols.base import CheckpointingProtocol
from repro.protocols.cbr import CheckpointBeforeReceiveProtocol
from repro.protocols.fdas import FixedDependencyAfterSendProtocol
from repro.protocols.fdi import FixedDependencyIntervalProtocol
from repro.protocols.registry import (
    available_protocols,
    make_protocol,
    protocol_class,
    register_protocol,
)
from repro.protocols.uncoordinated import UncoordinatedProtocol


class TestBaseBehaviour:
    def test_pid_validation(self):
        with pytest.raises(ValueError):
            UncoordinatedProtocol(4, 3)

    def test_brings_new_information(self):
        assert CheckpointingProtocol.brings_new_information((0, 1), (1, 1))
        assert not CheckpointingProtocol.brings_new_information((2, 2), (1, 2))


class TestUncoordinated:
    def test_never_forces(self):
        protocol = UncoordinatedProtocol(0, 2)
        protocol.notify_send()
        assert not protocol.should_force_checkpoint((0, 0), (5, 5))
        assert not protocol.ensures_rdt


class TestFdas:
    def test_forces_only_after_a_send_with_new_information(self):
        protocol = FixedDependencyAfterSendProtocol(1, 2)
        assert not protocol.should_force_checkpoint((0, 1), (1, 0))
        protocol.notify_send()
        assert protocol.should_force_checkpoint((0, 1), (1, 0))
        assert not protocol.should_force_checkpoint((1, 1), (1, 0))  # no new info

    def test_checkpoint_resets_the_sent_flag(self):
        protocol = FixedDependencyAfterSendProtocol(1, 2)
        protocol.notify_send()
        protocol.notify_checkpoint()
        assert not protocol.sent_in_current_interval
        assert not protocol.should_force_checkpoint((0, 1), (1, 0))

    def test_reset_after_rollback_clears_state(self):
        protocol = FixedDependencyAfterSendProtocol(1, 2)
        protocol.notify_send()
        protocol.reset_after_rollback()
        assert not protocol.should_force_checkpoint((0, 1), (1, 0))


class TestFdi:
    def test_forces_on_new_information_in_a_used_interval(self):
        protocol = FixedDependencyIntervalProtocol(1, 2)
        assert not protocol.should_force_checkpoint((0, 1), (1, 0))  # fresh interval
        protocol.notify_receive()
        assert protocol.should_force_checkpoint((0, 1), (1, 0))
        assert not protocol.should_force_checkpoint((2, 1), (1, 0))  # no new info

    def test_a_send_also_marks_the_interval_used(self):
        protocol = FixedDependencyIntervalProtocol(1, 2)
        protocol.notify_send()
        assert protocol.should_force_checkpoint((0, 1), (1, 0))


class TestCbr:
    def test_forces_on_any_receive_in_a_used_interval(self):
        protocol = CheckpointBeforeReceiveProtocol(1, 2)
        assert not protocol.should_force_checkpoint((5, 5), (1, 1))  # fresh interval
        protocol.notify_receive()
        # Even a message with no new information forces a checkpoint.
        assert protocol.should_force_checkpoint((5, 5), (1, 1))

    def test_checkpoint_opens_a_fresh_interval(self):
        protocol = CheckpointBeforeReceiveProtocol(1, 2)
        protocol.notify_send()
        protocol.notify_checkpoint()
        assert not protocol.should_force_checkpoint((5, 5), (1, 1))


class TestEagernessOrdering:
    def test_cbr_is_at_least_as_eager_as_fdi_which_is_at_least_as_eager_as_fdas(self):
        """Whenever FDAS forces, FDI forces; whenever FDI forces, CBR forces."""
        scenarios = [
            ("send", (0, 1), (1, 0)),
            ("receive", (0, 1), (1, 0)),
            ("send", (2, 1), (1, 0)),
            ("fresh", (0, 1), (1, 0)),
        ]
        for prior, dv, piggy in scenarios:
            fdas = FixedDependencyAfterSendProtocol(1, 2)
            fdi = FixedDependencyIntervalProtocol(1, 2)
            cbr = CheckpointBeforeReceiveProtocol(1, 2)
            for protocol in (fdas, fdi, cbr):
                if prior == "send":
                    protocol.notify_send()
                elif prior == "receive":
                    protocol.notify_receive()
            fdas_forces = fdas.should_force_checkpoint(dv, piggy)
            fdi_forces = fdi.should_force_checkpoint(dv, piggy)
            cbr_forces = cbr.should_force_checkpoint(dv, piggy)
            assert (not fdas_forces) or fdi_forces
            assert (not fdi_forces) or cbr_forces


class TestRegistry:
    def test_available_protocols(self):
        names = available_protocols()
        assert {"uncoordinated", "cbr", "fdi", "fdas"} <= set(names)

    def test_rdt_only_filter(self):
        assert "uncoordinated" not in available_protocols(rdt_only=True)

    def test_make_protocol(self):
        protocol = make_protocol("fdas", 1, 4)
        assert isinstance(protocol, FixedDependencyAfterSendProtocol)
        assert protocol.pid == 1 and protocol.num_processes == 4

    def test_unknown_protocol(self):
        with pytest.raises(KeyError):
            protocol_class("nope")

    def test_register_custom_protocol(self):
        from repro.protocols.registry import unregister_protocol

        class AlwaysForce(CheckpointingProtocol):
            name = "always-force-test"
            ensures_rdt = True

            def should_force_checkpoint(self, current_dv, piggybacked):
                return True

        register_protocol(AlwaysForce)
        try:
            assert "always-force-test" in available_protocols()
            assert isinstance(make_protocol("always-force-test", 0, 2), AlwaysForce)
        finally:
            unregister_protocol("always-force-test")
        assert "always-force-test" not in available_protocols()

    def test_register_rejects_non_protocols(self):
        with pytest.raises(TypeError):
            register_protocol(object)
