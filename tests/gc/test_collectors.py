"""Tests for the garbage collectors (adapter, baselines, registry)."""

import pytest

from repro.core.obsolete import retained_stable_checkpoints_theorem1
from repro.gc.base import GarbageCollector
from repro.gc.registry import (
    available_collectors,
    collector_class,
    make_collector,
    register_collector,
)
from repro.gc.rdt_lgc_collector import RdtLgcCollector
from repro.scenarios.experiments import run_random_simulation
from repro.storage.stable import StableStorage


class TestRegistry:
    def test_available_collectors(self):
        names = available_collectors()
        assert {
            "none",
            "rdt-lgc",
            "all-process-line",
            "wang-coordinated",
            "manivannan-singhal",
        } <= set(names)

    def test_asynchronous_only_filter(self):
        asynchronous = available_collectors(asynchronous_only=True)
        assert "rdt-lgc" in asynchronous
        assert "wang-coordinated" not in asynchronous

    def test_make_collector_with_options(self):
        storage = StableStorage(0)
        collector = make_collector("wang-coordinated", 0, 4, storage, period=25.0)
        assert collector.pid == 0
        assert collector.uses_control_messages

    def test_unknown_collector(self):
        with pytest.raises(KeyError):
            collector_class("nope")

    def test_register_custom_collector(self):
        from repro.gc.registry import unregister_collector

        class KeepLastOnly(GarbageCollector):
            name = "keep-last-only-test"
            asynchronous = True

            def on_checkpoint_stored(self, index, dv, *, forced, time):
                for old in self.storage.retained_indices():
                    if old != index:
                        self.storage.eliminate(old)

        register_collector(KeepLastOnly)
        try:
            assert "keep-last-only-test" in available_collectors()
        finally:
            unregister_collector("keep-last-only-test")
        assert "keep-last-only-test" not in available_collectors()

    def test_register_rejects_non_collectors(self):
        with pytest.raises(TypeError):
            register_collector(dict)


class TestRdtLgcCollectorAdapter:
    def test_adapter_matches_standalone_rdt_lgc_on_figure4(self):
        """Driving the adapter with the Figure 4 event stream produces exactly
        the behaviour of the stand-alone RdtLgc class."""
        from repro.core.rdt_lgc import RdtLgc
        from repro.scenarios.figures import FIGURE4_EXPECTED_FINAL, drive_figure4

        class _AdapterShim:
            """Expose the RdtLgc driving API on top of the collector + a DV."""

            def __init__(self, pid: int, n: int) -> None:
                from repro.causality.dependency_vector import DependencyVector

                self.storage = StableStorage(pid)
                self.collector = RdtLgcCollector(pid, n, self.storage)
                self.dv = DependencyVector.initial(n, pid)
                self.pid = pid

            def on_checkpoint(self):
                index = self.dv.current_interval()
                self.storage.store(index, self.dv.as_tuple())
                self.collector.on_checkpoint_stored(
                    index, self.dv.as_tuple(), forced=False, time=0.0
                )
                self.dv.advance_after_checkpoint()
                return index

            def before_send(self):
                return self.dv.piggyback()

            def on_receive(self, piggyback):
                updated = self.dv.absorb(piggyback)
                self.collector.on_receive(piggyback, updated, self.dv.as_tuple())
                return updated

            def state_view(self):
                from repro.core.rdt_lgc import GcStateView

                return GcStateView(self.dv.as_tuple(), self.collector.uc_view())

        shims = [_AdapterShim(pid, 3) for pid in range(3)]
        drive_figure4(shims)
        for pid, expectations in FIGURE4_EXPECTED_FINAL.items():
            assert shims[pid].dv.as_tuple() == expectations["dv"]
            assert shims[pid].collector.uc_view() == expectations["uc"]
            assert shims[pid].storage.retained_indices() == expectations["retained"]

        reference = [RdtLgc(pid, 3) for pid in range(3)]
        drive_figure4(reference)
        for pid in range(3):
            assert (
                shims[pid].storage.retained_indices()
                == reference[pid].retained_indices()
            )


class TestCollectorsInSimulation:
    def test_none_collector_retains_everything(self):
        result = run_random_simulation(collector="none", duration=80.0, seed=2)
        assert result.total_collected == 0
        assert result.total_retained_final == result.total_checkpoints

    def test_rdt_lgc_collects_most_checkpoints(self):
        result = run_random_simulation(collector="rdt-lgc", duration=150.0, seed=2)
        assert result.total_collected > 0
        assert result.collection_ratio > 0.5
        assert result.control_messages == 0

    def test_wang_coordinated_is_safe_and_uses_control_messages(self):
        result = run_random_simulation(
            collector="wang-coordinated",
            collector_options={"period": 20.0},
            duration=150.0,
            seed=3,
            audit="safety",
        )
        assert result.control_messages > 0
        assert result.all_audits_safe
        assert result.total_collected > 0

    def test_all_process_line_is_safe_and_uses_control_messages(self):
        result = run_random_simulation(
            collector="all-process-line",
            collector_options={"period": 20.0},
            duration=150.0,
            seed=3,
            audit="safety",
        )
        assert result.control_messages > 0
        assert result.all_audits_safe

    def test_wang_coordinated_collects_at_least_as_much_as_all_process_line(self):
        wang = run_random_simulation(
            collector="wang-coordinated",
            collector_options={"period": 20.0},
            duration=200.0,
            seed=4,
        )
        line = run_random_simulation(
            collector="all-process-line",
            collector_options={"period": 20.0},
            duration=200.0,
            seed=4,
        )
        assert wang.total_retained_final <= line.total_retained_final

    def test_coordinated_collectors_never_discard_required_checkpoints(self):
        for name in ("wang-coordinated", "all-process-line"):
            result = run_random_simulation(
                collector=name,
                collector_options={"period": 15.0},
                duration=150.0,
                seed=6,
                crashes=1,
                audit="safety",
            )
            assert result.all_audits_safe
            ccp = result.final_ccp
            assert ccp is not None
            required = retained_stable_checkpoints_theorem1(ccp)
            retained = {
                (pid, index)
                for pid, count in enumerate(result.retained_final)
                for index in range(count)
            }
            # The audit already checks this precisely; here we only sanity-check
            # that nothing required exceeds what is retained in total.
            assert len(required) <= result.total_retained_final

    def test_manivannan_singhal_honours_its_window(self):
        result = run_random_simulation(
            collector="manivannan-singhal",
            collector_options={"checkpoint_period": 10.0, "max_message_delay": 3.0},
            duration=150.0,
            seed=5,
            mean_checkpoint_gap=5.0,
            audit="safety",
        )
        assert result.total_collected > 0
        assert result.all_audits_safe
