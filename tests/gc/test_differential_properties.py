"""Differential collector properties: the optimality ordering, seeded sweep.

Collectors never perturb the application execution (workloads draw from the
engine generator, network links own private streams, control traffic rides
its own per-link streams), so running every registered collector against the
same seed yields the *same* execution — which makes their retained sets
directly comparable.  The paper's ordering must then hold pointwise:

    retained(rdt-lgc)  ⊆  retained(C)  ⊆  retained(none)     for every C

— RDT-LGC is optimal (eliminates everything causally identifiable as
obsolete, Theorem 5), every baseline is merely safe-and-conservative, and
``none`` eliminates nothing.  Swept across protocol × workload × churn axes.
The Manivannan–Singhal stand-in runs with its timing assumption *honoured*
(window far above the run length); the violated-assumption regime is the
unsafe one and is exercised by the campaign failure-path tests instead.
"""

from __future__ import annotations

import random

import pytest

from repro.gc.registry import available_collectors
from repro.simulation.failures import FailureModelSpec, FailureSchedule
from repro.simulation.runner import SimulationConfig, SimulationRunner
from repro.simulation.workloads import make_workload

#: Baseline options of the differential sweep (MS window honoured).
SWEEP_OPTIONS = {
    "all-process-line": {"period": 10.0},
    "wang-coordinated": {"period": 10.0},
    "manivannan-singhal": {"checkpoint_period": 100.0},
}

NUM_PROCESSES = 3
DURATION = 40.0


def _failure_axis(label: str) -> FailureSchedule:
    if label == "none":
        return FailureSchedule.none()
    assert label == "churn"
    return FailureModelSpec.of("churn", {"hazard_rate": 0.01}).schedule(
        num_processes=NUM_PROCESSES, duration=DURATION, rng=random.Random(7)
    )


def _run_all_collectors(workload: str, protocol: str, failures, seed: int):
    """Retained sets per collector, plus the messages_sent sanity anchor."""
    outcomes = {}
    for collector in available_collectors():
        runner = SimulationRunner(
            SimulationConfig(
                num_processes=NUM_PROCESSES,
                duration=DURATION,
                workload=make_workload(workload),
                protocol=protocol,
                collector=collector,
                collector_options=SWEEP_OPTIONS.get(collector, {}),
                failures=failures,
                seed=seed,
            )
        )
        result = runner.run()
        outcomes[collector] = (
            {
                node.pid: frozenset(node.storage.retained_indices())
                for node in runner.nodes
            },
            result.messages_sent,
        )
    return outcomes


@pytest.mark.parametrize("protocol", ["fdas", "cbr"])
@pytest.mark.parametrize("workload", ["uniform-random", "ring"])
@pytest.mark.parametrize("failure_label", ["none", "churn"])
def test_retained_sets_respect_the_optimality_ordering(
    protocol, workload, failure_label
):
    failures = _failure_axis(failure_label)
    for seed in (0, 1):
        outcomes = _run_all_collectors(workload, protocol, failures, seed)
        # Sanity: identical executions across collectors — the comparison
        # below is meaningless if a collector perturbed the run.
        assert len({messages for _, messages in outcomes.values()}) == 1
        rdt_retained, _ = outcomes["rdt-lgc"]
        none_retained, _ = outcomes["none"]
        for collector, (retained, _) in outcomes.items():
            for pid in range(NUM_PROCESSES):
                assert rdt_retained[pid] <= retained[pid], (
                    f"{collector} (pid {pid}, seed {seed}): retained "
                    f"{sorted(retained[pid])} misses rdt-lgc-retained "
                    f"{sorted(rdt_retained[pid])} — it eliminated something "
                    f"causal knowledge cannot justify"
                )
                assert retained[pid] <= none_retained[pid], (
                    f"{collector} (pid {pid}, seed {seed}): retained "
                    f"{sorted(retained[pid])} exceeds the no-GC superset "
                    f"{sorted(none_retained[pid])}"
                )


def test_none_collector_is_the_trivial_upper_bound():
    """`none` retains exactly everything stored (minus rollback losses)."""
    failures = _failure_axis("none")
    runner = SimulationRunner(
        SimulationConfig(
            num_processes=NUM_PROCESSES,
            duration=DURATION,
            workload=make_workload("uniform-random"),
            collector="none",
            failures=failures,
            seed=3,
        )
    )
    result = runner.run()
    assert result.total_collected == 0
    assert result.total_retained_final == result.total_stored
