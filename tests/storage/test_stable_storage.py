"""Unit tests for the simulated stable storage."""

import pytest

from repro.storage.stable import StableStorage


class TestStore:
    def test_store_in_order(self):
        storage = StableStorage(0)
        storage.store(0, (0, 0))
        storage.store(1, (1, 0))
        assert storage.retained_indices() == [0, 1]

    def test_out_of_order_store_rejected(self):
        storage = StableStorage(0)
        storage.store(0, (0, 0))
        with pytest.raises(ValueError):
            storage.store(2, (0, 0))

    def test_record_fields(self):
        storage = StableStorage(3)
        record = storage.store(0, (1, 2), payload="state", forced=True, time=4.5, size=7)
        assert record.pid == 3
        assert record.dependency_vector == (1, 2)
        assert record.payload == "state"
        assert record.forced and record.time == 4.5 and record.size == 7

    def test_counters(self):
        storage = StableStorage(0)
        storage.store(0, (0,))
        storage.store(1, (1,))
        assert storage.total_stored() == 2
        assert storage.retained_count() == 2
        assert storage.max_retained() == 2
        assert storage.last_index() == 1
        assert storage.next_index() == 2

    def test_occupancy_uses_sizes(self):
        storage = StableStorage(0)
        storage.store(0, (0,), size=2)
        storage.store(1, (1,), size=3)
        assert storage.occupancy() == 5


class TestEliminate:
    def test_eliminate_removes_checkpoint(self):
        storage = StableStorage(0)
        storage.store(0, (0,))
        storage.store(1, (1,))
        storage.eliminate(0)
        assert storage.retained_indices() == [1]
        assert storage.total_eliminated() == 1
        assert not storage.contains(0)

    def test_eliminate_unknown_rejected(self):
        storage = StableStorage(0)
        with pytest.raises(KeyError):
            storage.eliminate(3)

    def test_get_after_eliminate_rejected(self):
        storage = StableStorage(0)
        storage.store(0, (0,))
        storage.eliminate(0)
        with pytest.raises(KeyError):
            storage.get(0)

    def test_max_retained_is_a_high_water_mark(self):
        storage = StableStorage(0)
        storage.store(0, (0,))
        storage.store(1, (1,))
        storage.eliminate(0)
        storage.store(2, (2,))
        assert storage.max_retained() == 2
        assert storage.retained_count() == 2


class TestRollback:
    def test_eliminate_after_rewinds_next_index(self):
        storage = StableStorage(0)
        for index in range(4):
            storage.store(index, (index,))
        removed = storage.eliminate_after(1)
        assert removed == [2, 3]
        assert storage.next_index() == 2
        assert storage.total_rolled_back() == 2
        # Indices are reused after a rollback, matching Algorithm 3.
        storage.store(2, (9,))
        assert storage.get(2).dependency_vector == (9,)

    def test_rolled_back_checkpoints_do_not_count_as_collected(self):
        storage = StableStorage(0)
        for index in range(3):
            storage.store(index, (index,))
        storage.eliminate_after(0)
        assert storage.total_eliminated() == 0
        assert storage.total_rolled_back() == 2

    def test_eliminate_after_with_gaps(self):
        storage = StableStorage(0)
        for index in range(5):
            storage.store(index, (index,))
        storage.eliminate(2)
        removed = storage.eliminate_after(1)
        assert removed == [3, 4]
        assert storage.retained_indices() == [0, 1]

    def test_latest_after_rollback(self):
        storage = StableStorage(0)
        for index in range(3):
            storage.store(index, (index,))
        storage.eliminate_after(0)
        latest = storage.latest()
        assert latest is not None and latest.index == 0

    def test_latest_on_empty_storage(self):
        assert StableStorage(0).latest() is None
