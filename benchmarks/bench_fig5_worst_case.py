"""FIG-5: the worst-case scenario and the space bounds of Section 4.5.

Runs the worst-case schedule for several system sizes and reports the
per-process and global storage occupancy against the paper's bounds: at most
``n`` retained checkpoints per process (``n + 1`` transiently), ``n^2`` at rest
globally after the final round, ``n (n + 1)`` transiently.
"""

import pytest

from repro.analysis.tables import TextTable
from repro.scenarios.experiments import run_worst_case


@pytest.mark.parametrize("num_processes", [2, 4, 8])
def test_fig5_worst_case(benchmark, emit_table, num_processes):
    result = benchmark(run_worst_case, num_processes)

    table = TextTable(
        ["quantity", "paper bound", "measured"],
        title=f"Figure 5 — worst case, n = {num_processes}",
    )
    table.add_row(
        "retained per process (at rest)",
        f"n = {num_processes}",
        max(result.retained_final),
    )
    table.add_row(
        "retained per process (transient)",
        f"n + 1 = {num_processes + 1}",
        result.max_retained_any_process,
    )
    table.add_row(
        "global occupancy at rest",
        f"n^2 = {num_processes ** 2}",
        result.total_retained_final,
    )
    table.add_row(
        "global occupancy (transient)",
        f"n(n+1) = {num_processes * (num_processes + 1)}",
        sum(result.max_retained_per_process),
    )
    emit_table(f"fig5_worst_case_n{num_processes}", table.render())

    assert result.retained_final == tuple([num_processes] * num_processes)
    assert result.max_retained_any_process <= num_processes + 1
    assert result.total_retained_final == num_processes ** 2
    assert sum(result.max_retained_per_process) <= num_processes * (num_processes + 1)
