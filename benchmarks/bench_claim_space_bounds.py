"""CLAIM-BOUND: per-process and global storage bounds across system sizes.

Sweeps the number of processes over the worst-case schedule and a random
workload, comparing RDT-LGC (bound ``n`` per process, ``n^2`` / ``n(n+1)``
globally) against Wang-style coordinated collection (which on the same
patterns can reach the smaller, globally-informed occupancy — the
``n(n+1)/2``-bound family the paper cites).
"""

import pytest

from repro.analysis.tables import TextTable
from repro.scenarios.experiments import run_random_simulation, run_worst_case

SIZES = [2, 4, 8]


@pytest.mark.parametrize("workload_kind", ["worst-case", "uniform-random"])
def test_claim_space_bounds(benchmark, emit_table, workload_kind):
    def sweep():
        rows = []
        for n in SIZES:
            if workload_kind == "worst-case":
                lgc = run_worst_case(n, collector="rdt-lgc")
                wang = run_worst_case(
                    n, collector="wang-coordinated", collector_options={"period": 4.0}
                )
            else:
                lgc = run_random_simulation(
                    num_processes=n, duration=150.0, seed=n, collector="rdt-lgc"
                )
                wang = run_random_simulation(
                    num_processes=n,
                    duration=150.0,
                    seed=n,
                    collector="wang-coordinated",
                    collector_options={"period": 15.0},
                )
            rows.append((n, lgc, wang))
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    table = TextTable(
        [
            "n",
            "bound n",
            "rdt-lgc max/process",
            "rdt-lgc total",
            "wang total",
            "wang control msgs",
        ],
        title=f"Space bounds ({workload_kind})",
    )
    for n, lgc, wang in rows:
        table.add_row(
            n,
            n,
            lgc.max_retained_any_process,
            lgc.total_retained_final,
            wang.total_retained_final,
            wang.control_messages,
        )
    emit_table(f"claim_space_bounds_{workload_kind}", table.render())

    for n, lgc, wang in rows:
        # Per-process bound: n at rest, n + 1 transiently.
        assert lgc.max_retained_any_process <= n + 1
        assert all(r <= n for r in lgc.retained_final)
        # The asynchronous collector never exchanges control messages.
        assert lgc.control_messages == 0
        assert wang.control_messages > 0
        if workload_kind == "worst-case":
            # Global knowledge collects the checkpoints causal knowledge cannot.
            assert wang.total_retained_final <= lgc.total_retained_final
