"""Compare a fresh perf run against the committed ``BENCH_perf.json``.

The committed file (written by :mod:`benchmarks.bench_perf_scaling` at the
repository root) is the perf trajectory between PRs.  This checker re-measures
and exits nonzero when any kernel row regressed by more than the threshold
(default 30%).

Two comparison modes, because wall-clock seconds do not transfer between
machines:

* **ratio mode** (default): compares each row's *speedup* — the per-instant
  cost of the brute-force reference divided by the kernel's, both measured in
  the same process seconds apart.  A kernel slowdown shrinks the ratio no
  matter how fast the host is, so this is safe for CI/pytest on arbitrary
  hardware.
* **absolute mode** (``--absolute``): additionally compares raw
  ``new_per_instant_s`` seconds.  Only meaningful when the baseline was
  produced on the same machine.

Rows are matched on (processes, messages); rows whose fresh kernel time is
below ``--min-seconds`` are skipped in absolute mode (micro-timings are
noise).  The pytest smoke test (``tests/benchmarks/test_perf_regression.py``)
invokes :func:`main` with ``--smoke``, which re-measures only the smoke-sized
configurations so tier-1 stays cheap.

Besides the perf rows, the checker gates the **campaign subsystem**: a
seconds-sized sweep (the smoke campaign spec) is executed twice — serially
and on a 2-worker pool — and the aggregate CSV/JSON documents must be byte
identical.  Any nondeterminism introduced into cell seeding, pool execution
or aggregation ordering fails the gate before it can corrupt a paper-scale
study.  ``--skip-campaign`` disables the gate (e.g. when bisecting a pure
kernel regression).

Run directly::

    python benchmarks/check_regression.py --smoke
    python benchmarks/check_regression.py --fresh BENCH_perf.json --absolute
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, Dict, List, Optional, Tuple

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
for _path in (_SRC, _REPO_ROOT):  # repo root makes `benchmarks.*` importable
    if _path not in sys.path:
        sys.path.insert(0, _path)

BASELINE_PATH = os.path.join(_REPO_ROOT, "BENCH_perf.json")

# Committed-document acceptance gates: the datacenter row must stay under
# this per-instant latency, and the medium-tier memory pass must keep at
# least this much of its pruning benefit.
LARGE_LATENCY_CONFIG = (64, 100000)
LARGE_LATENCY_CEILING_S = 0.05
MIN_MEMORY_REDUCTION = 0.30
# Fresh-run memory gate: peak traced bytes of a pruned medium-tier run may
# grow at most this much over the committed baseline.
MEMORY_GROWTH_THRESHOLD = 0.20


def _load_document(path: str) -> Dict[str, Any]:
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict):
        document = {"rows": document}
    return document


def _load_rows(path: str) -> Dict[Tuple[int, int], Dict[str, Any]]:
    document = _load_document(path)
    return {(row["processes"], row["messages"]): row for row in document["rows"]}


def check_committed_document(path: str) -> List[str]:
    """Static acceptance gates on the committed BENCH_perf.json itself.

    These hold the document to the claims the kernel makes: the 64-process /
    10^5-message pruned row must analyse in under
    ``LARGE_LATENCY_CEILING_S`` per instant, and the medium-tier memory pass
    must show at least ``MIN_MEMORY_REDUCTION`` peak reduction from pruning.
    No fresh measurement happens here — CI regenerates the document in the
    nightly large-tier job, and this gate keeps a stale or regressed document
    from being committed as the new baseline.
    """
    violations: List[str] = []
    document = _load_document(path)
    rows = {(row["processes"], row["messages"]): row for row in document["rows"]}
    large = rows.get(LARGE_LATENCY_CONFIG)
    if large is None:
        violations.append(
            f"committed baseline has no "
            f"{LARGE_LATENCY_CONFIG[0]} procs x {LARGE_LATENCY_CONFIG[1]} msgs "
            f"row (the datacenter acceptance configuration)"
        )
    elif float(large["new_per_instant_s"]) >= LARGE_LATENCY_CEILING_S:
        violations.append(
            f"committed large-tier latency {large['new_per_instant_s']:.4f}s "
            f"per instant breaches the {LARGE_LATENCY_CEILING_S:.3f}s ceiling"
        )
    memory = document.get("memory")
    if memory is None:
        violations.append("committed baseline has no memory section")
    elif float(memory["reduction"]) < MIN_MEMORY_REDUCTION:
        violations.append(
            f"committed memory reduction {float(memory['reduction']) * 100:.0f}% "
            f"is below the {MIN_MEMORY_REDUCTION * 100:.0f}% floor"
        )
    # Single-sample old-path baselines are noise: every measured row must
    # either have >= 3 samples or be explicitly marked extrapolated.
    for key, row in sorted(rows.items()):
        if row.get("old_extrapolated"):
            continue
        if int(row.get("old_instants_measured", 0)) < 3:
            violations.append(
                f"{key[0]} procs x {key[1]} msgs: old path measured at "
                f"{row.get('old_instants_measured')} instant(s); need >= 3 "
                f"or an explicit old_extrapolated marker"
            )
    return violations


def check_memory_regression(
    baseline_document: Dict[str, Any],
    *,
    threshold: float = MEMORY_GROWTH_THRESHOLD,
) -> List[str]:
    """Fresh-run memory gate: re-measure the pruned medium-tier peak.

    tracemalloc peaks count allocations, not host RSS, so they transfer
    between machines; a growth beyond ``threshold`` over the committed
    baseline means the recorder's live frontier stopped being bounded (a
    pruning regression) rather than noise.
    """
    memory = baseline_document.get("memory")
    if memory is None:
        return ["baseline has no memory section to gate against"]
    from benchmarks.bench_perf_scaling import MEMORY_CONFIG, measure_memory_pass

    config = memory.get("config", {})
    expected = (
        config.get("processes"),
        config.get("messages"),
        config.get("samples"),
    )
    if expected != MEMORY_CONFIG:
        return [
            f"baseline memory config {expected} does not match the current "
            f"medium-tier memory configuration {MEMORY_CONFIG}"
        ]
    fresh = measure_memory_pass(*MEMORY_CONFIG, prune=True)
    base = int(memory["peak_pruned_bytes"])
    ceiling = base * (1.0 + threshold)
    if fresh > ceiling:
        return [
            f"pruned medium-tier peak memory regressed: {fresh} bytes vs "
            f"committed {base} (allowed ceiling {ceiling:.0f})"
        ]
    return []


def compare(
    baseline: Dict[Tuple[int, int], Dict[str, Any]],
    fresh: Dict[Tuple[int, int], Dict[str, Any]],
    *,
    threshold: float = 0.30,
    absolute: bool = False,
    min_seconds: float = 0.02,
) -> List[str]:
    """Return one violation message per regressed kernel row (empty == pass)."""
    violations: List[str] = []
    matched = 0
    for key, fresh_row in sorted(fresh.items()):
        base_row = baseline.get(key)
        if base_row is None:
            continue
        matched += 1
        processes, messages = key
        label = f"{processes} procs x {messages} msgs"
        base_speedup = float(base_row["speedup"])
        fresh_speedup = float(fresh_row["speedup"])
        if fresh_speedup < base_speedup * (1.0 - threshold):
            violations.append(
                f"{label}: kernel speedup regressed "
                f"{base_speedup:.2f}x -> {fresh_speedup:.2f}x "
                f"(allowed floor {base_speedup * (1.0 - threshold):.2f}x)"
            )
        if absolute:
            base_new = float(base_row["new_per_instant_s"])
            fresh_new = float(fresh_row["new_per_instant_s"])
            if fresh_new > min_seconds and fresh_new > base_new * (1.0 + threshold):
                violations.append(
                    f"{label}: kernel time regressed "
                    f"{base_new:.4f}s -> {fresh_new:.4f}s per instant "
                    f"(allowed ceiling {base_new * (1.0 + threshold):.4f}s)"
                )
    if matched == 0:
        violations.append(
            "no fresh row matches any baseline row — the sweep configurations "
            "diverged from the committed BENCH_perf.json"
        )
    return violations


def check_campaign_determinism(*, workers: int = 2) -> List[str]:
    """Gate the campaign subsystem: serial and pooled execution of the same
    spec must produce byte-identical aggregate tables (empty == pass)."""
    from repro.scenarios.campaign import aggregate_campaign, run_campaign
    from repro.scenarios.experiments import smoke_campaign_spec

    violations: List[str] = []
    spec = smoke_campaign_spec()
    serial = run_campaign(spec, workers=1)
    pooled = run_campaign(spec, workers=workers)
    # Every smoke cell uses a safe collector, so a failed cell is a
    # simulation regression, not an expected study outcome.
    for label, run in (("serial", serial), ("pooled", pooled)):
        for record in run.failed_records:
            p = record["params"]
            violations.append(
                f"campaign smoke cell failed ({label}): {p['collector']} / "
                f"{p['workload']} / failures={p['failures']} / "
                f"seed#{p['seed_index']}: {record['error']}"
            )
    if violations:
        return violations
    serial_summary = aggregate_campaign(serial.records)
    pooled_summary = aggregate_campaign(pooled.records)
    if serial_summary.to_csv() != pooled_summary.to_csv():
        violations.append(
            f"campaign aggregate CSV differs between serial and "
            f"{workers}-worker execution of the same spec"
        )
    if serial_summary.to_json() != pooled_summary.to_json():
        violations.append(
            f"campaign aggregate JSON differs between serial and "
            f"{workers}-worker execution of the same spec"
        )
    return violations


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        default=BASELINE_PATH,
        help="committed BENCH_perf.json to compare against",
    )
    parser.add_argument(
        "--fresh",
        default=None,
        help="a freshly produced BENCH_perf.json (measured in-process if omitted)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="measure only the smoke-sized configurations (for tier-1/pytest)",
    )
    parser.add_argument(
        "--absolute",
        action="store_true",
        help="also compare raw seconds (same-machine baselines only)",
    )
    parser.add_argument("--threshold", type=float, default=0.30)
    parser.add_argument("--min-seconds", type=float, default=0.02)
    parser.add_argument(
        "--skip-campaign",
        action="store_true",
        help="skip the campaign serial-vs-pool determinism gate",
    )
    parser.add_argument(
        "--skip-memory",
        action="store_true",
        help="skip the fresh pruned-run memory gate",
    )
    args = parser.parse_args(argv)

    campaign_violations: List[str] = []
    if not args.skip_campaign:
        campaign_violations = check_campaign_determinism()

    if not os.path.exists(args.baseline):
        if campaign_violations:
            for violation in campaign_violations:
                print(f"REGRESSION: {violation}", file=sys.stderr)
            return 1
        print(f"check_regression: no baseline at {args.baseline}; nothing to check")
        return 0
    baseline_document = _load_document(args.baseline)
    baseline = _load_rows(args.baseline)

    document_violations = check_committed_document(args.baseline)
    memory_violations: List[str] = []
    if not args.skip_memory:
        memory_violations = check_memory_regression(baseline_document)

    if args.fresh is not None:
        if not os.path.exists(args.fresh):
            print(f"check_regression: fresh file not found: {args.fresh}", file=sys.stderr)
            return 2
        fresh = _load_rows(args.fresh)
    else:
        from benchmarks.bench_perf_scaling import (
            FULL_SWEEP,
            SMOKE_SWEEP,
            run_sweep,
        )

        configs = SMOKE_SWEEP if args.smoke else FULL_SWEEP
        document = run_sweep(configs)
        fresh = {(r["processes"], r["messages"]): r for r in document["rows"]}

    violations = (
        campaign_violations
        + document_violations
        + memory_violations
        + compare(
            baseline,
            fresh,
            threshold=args.threshold,
            absolute=args.absolute,
            min_seconds=args.min_seconds,
        )
    )
    if violations:
        for violation in violations:
            print(f"REGRESSION: {violation}", file=sys.stderr)
        return 1
    campaign_note = "skipped" if args.skip_campaign else "deterministic"
    memory_note = "skipped" if args.skip_memory else "within threshold"
    print(
        f"check_regression: {len(fresh)} row(s) within threshold, "
        f"campaign gate {campaign_note}, memory gate {memory_note} — ok"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
