"""Distributed campaign fabric under stress: shards, SIGKILL, byte-identity.

Drives the claim/lease work-queue the way CI and real multi-host sweeps do,
and *gates* on its two invariants:

1. **Exactly-once execution** — several worker processes drain one shared
   SQL store; the lease journal must show exactly one ``ok`` completion per
   cell, even though one worker is SIGKILLed mid-sweep and its leases are
   reclaimed by the survivors.
2. **Byte-identical reduction** — the store's aggregate CSV/JSON must equal
   the serial in-memory reference aggregate of the same grid, byte for byte.

It also reports fabric throughput (cells/second against a shared store) for
the perf trajectory.

Run directly::

    python benchmarks/bench_campaign_fabric.py --smoke   # seconds, the CI gate
    python benchmarks/bench_campaign_fabric.py           # 10^4 cells, nightly
    python benchmarks/bench_campaign_fabric.py --cells 2000 --workers 8
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import os
import signal
import sys
import time
from collections import Counter
from typing import List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.scenarios.campaign import (  # noqa: E402
    CampaignSpec,
    SQLResultStore,
    aggregate_campaign,
    run_campaign,
    run_worker,
    spec_from_mapping,
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def fabric_spec(target_cells: int) -> CampaignSpec:
    """A grid of ~``target_cells`` seconds-cheap cells (seed axis scaled)."""
    collectors = ["rdt-lgc", "none", "manivannan-singhal"]
    failure_counts = [0, 1]
    cells_per_seed = len(collectors) * len(failure_counts)
    seeds = max(1, target_cells // cells_per_seed)
    return spec_from_mapping(
        {
            "name": "fabric-bench",
            "num_processes": 3,
            "duration": 8.0,
            "collectors": collectors,
            "workloads": ["uniform-random"],
            "failure_counts": failure_counts,
            "seeds": seeds,
        }
    )


def _worker_entry(target_cells: int, store_path: str, name: str) -> None:
    run_worker(
        fabric_spec(target_cells),
        store_path,
        worker=name,
        lease_duration=120.0,
        batch_size=4,
        wait=True,
        poll_interval=0.1,
    )


def _victim_entry(target_cells: int, store_path: str) -> None:
    """Complete a few cells, then die by SIGKILL holding live leases.

    Deterministic crash injection: whatever the grid's speed, the store is
    left with completed cells (the survivors must *not* re-run them) and
    leased-but-unfinished cells (the survivors must reclaim them on expiry).
    """
    spec = fabric_spec(target_cells)
    run_worker(
        spec,
        store_path,
        worker="victim",
        max_cells=5,
        lease_duration=2.0,
        batch_size=4,
    )
    store = SQLResultStore(store_path)
    store.claim(worker="victim", limit=4, lease_duration=2.0)
    os.kill(os.getpid(), signal.SIGKILL)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--cells", type=int, default=10_000,
        help="approximate grid size (default: 10000 — the nightly scale)",
    )
    parser.add_argument(
        "--workers", type=int, default=max(os.cpu_count() or 2, 2),
        help="concurrent fabric workers (default: all cores, at least 2)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="seconds-sized gate: ~60 cells, 2 workers + one SIGKILL victim",
    )
    parser.add_argument(
        "--store", default=None,
        help="SQL store path (default: benchmarks/results/fabric_bench.sqlite)",
    )
    args = parser.parse_args(argv)

    target = 60 if args.smoke else args.cells
    workers = 2 if args.smoke else max(args.workers, 2)
    spec = fabric_spec(target)
    store_path = args.store or os.path.join(RESULTS_DIR, "fabric_bench.sqlite")
    os.makedirs(os.path.dirname(os.path.abspath(store_path)), exist_ok=True)
    if os.path.exists(store_path):
        os.remove(store_path)

    print(
        f"fabric bench: {spec.cell_count} cells, {workers} workers + "
        f"1 SIGKILL victim, store {store_path}"
    )

    # One doomed worker runs first: it completes a handful of cells, then is
    # SIGKILLed holding live leases.  The survivors must resume without
    # re-running its completed cells and reclaim its orphaned leases once the
    # (deliberately short) 2-second lease expires.
    victim = multiprocessing.Process(target=_victim_entry, args=(target, store_path))
    victim.start()
    victim.join(timeout=600)
    if victim.exitcode != -signal.SIGKILL:
        print(f"FAIL: victim expected to die by SIGKILL, exited {victim.exitcode}")
        return 1

    started = time.perf_counter()
    survivors = [
        multiprocessing.Process(
            target=_worker_entry, args=(target, store_path, f"worker-{i}")
        )
        for i in range(workers)
    ]
    for process in survivors:
        process.start()
    for process in survivors:
        process.join()
        if process.exitcode != 0:
            print(f"FAIL: worker exited with {process.exitcode}")
            return 1
    elapsed = time.perf_counter() - started

    store = SQLResultStore(store_path)
    counts = store.status_counts()
    print(f"store status: {counts}; {elapsed:.1f}s after the kill")

    failures = 0
    if counts.get("ok", 0) != spec.cell_count:
        print(f"FAIL: {counts.get('ok', 0)}/{spec.cell_count} cells completed")
        failures += 1

    ok_leases = Counter(
        entry["cell_id"]
        for entry in store.lease_history()
        if entry["outcome"] == "ok"
    )
    doubled = [cell for cell, n in ok_leases.items() if n != 1]
    if doubled:
        print(f"FAIL: {len(doubled)} cell(s) completed more than once: {doubled[:5]}")
        failures += 1
    reclaimed = sum(
        1 for entry in store.lease_history() if entry["outcome"] == "expired"
    )
    stale = sum(1 for entry in store.lease_history() if entry["outcome"] == "stale")
    print(
        f"lease journal: {len(ok_leases)} completions, {reclaimed} expired "
        f"lease(s) reclaimed from the victim, {stale} stale"
    )
    if not reclaimed:
        print("FAIL: the victim's orphaned leases were never reclaimed")
        failures += 1

    # The reducer invariant: the sharded, crash-ridden fabric run aggregates
    # byte-identically to a serial in-memory reference of the same grid.
    reference = aggregate_campaign(run_campaign(spec).records)
    reduced = aggregate_campaign(store.records(include_incomplete=False))
    if reduced.to_csv() != reference.to_csv() or reduced.to_json() != reference.to_json():
        print("FAIL: store aggregate differs from the serial reference")
        failures += 1
    else:
        print("byte-identity: store aggregate == serial reference (CSV and JSON)")

    document = {
        "cells": spec.cell_count,
        "workers": workers,
        "seconds": round(elapsed, 3),
        "cells_per_second": round(spec.cell_count / elapsed, 2),
        "reclaimed_leases": reclaimed,
        "stale_completions": stale,
    }
    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "BENCH_fabric.json")
    with open(out_path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2)
        handle.write("\n")
    print(f"throughput: {document['cells_per_second']} cells/s -> {out_path}")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
