"""Benchmark-suite configuration.

Ensures the in-tree ``src`` layout is importable and provides the shared
``emit_table`` helper that every benchmark uses to print the rows/series
corresponding to the paper's figures and to persist them under
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys

import pytest

_SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture
def emit_table():
    """Print a result table and persist it under ``benchmarks/results/``."""

    def _emit(name: str, text: str) -> None:
        os.makedirs(RESULTS_DIR, exist_ok=True)
        path = os.path.join(RESULTS_DIR, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"\n[{name}]\n{text}")

    return _emit
