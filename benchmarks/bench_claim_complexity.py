"""CLAIM-COMPLEXITY: O(n) time per event and O(n log n) per rollback.

Microbenchmarks the three RDT-LGC handlers (receive, checkpoint, rollback) at
increasing system sizes and reports the measured time per operation; the
expected shape is linear growth for the per-event handlers (the work is the
size-``n`` vector scan) and near-linear for the rollback (bounded by the at
most ``n`` stored checkpoints).
"""

import pytest

from repro.core.rdt_lgc import RdtLgc

SIZES = [4, 16, 64, 256]


def _collector_with_peers(num_processes: int) -> RdtLgc:
    """A collector that has heard from every peer once (UC fully populated)."""
    gc = RdtLgc(0, num_processes)
    gc.on_checkpoint()
    for peer in range(1, num_processes):
        piggyback = [0] * num_processes
        piggyback[peer] = 1
        gc.on_checkpoint()
        gc.on_receive(piggyback)
    return gc


@pytest.mark.parametrize("num_processes", SIZES)
def test_event_handlers_scale_linearly(benchmark, num_processes):
    gc = _collector_with_peers(num_processes)
    piggyback = [0] * num_processes

    def receive_and_checkpoint():
        gc.on_receive(piggyback)  # no new information: pure O(n) scan
        gc.on_checkpoint()

    benchmark(receive_and_checkpoint)


@pytest.mark.parametrize("num_processes", SIZES)
def test_rollback_handler(benchmark, num_processes):
    gc = _collector_with_peers(num_processes)
    rollback_index = gc.storage.last_index()
    last_interval = list(gc.dependency_vector)

    benchmark(gc.on_rollback, rollback_index, last_interval)
