"""Collector behaviour under adversarial network fault models, as one sweep.

Crosses every collector with the fault-model regimes of
:func:`repro.scenarios.experiments.fault_model_networks` — uniform baseline,
i.i.d. loss, Gilbert–Elliott bursty loss, duplication, an asymmetric latency
matrix, a healing partition, FIFO discipline — plus crash-recovery churn,
through :mod:`repro.scenarios.campaign`, and writes:

* the JSONL result store (``benchmarks/results/fault_models.jsonl``) —
  re-running the benchmark resumes from it instead of recomputing;
* the aggregate tables grouped per network regime (text to stdout, CSV/JSON
  next to the store);
* a throughput line (cells/second, worker count) for the perf trajectory.

Run directly::

    python benchmarks/bench_fault_models.py                 # full grid, pool
    python benchmarks/bench_fault_models.py --workers 2
    python benchmarks/bench_fault_models.py --smoke         # seconds-sized
    python benchmarks/bench_fault_models.py --fresh         # ignore the store
    python benchmarks/bench_fault_models.py --traces        # per-cell artifacts
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.scenarios.campaign import aggregate_campaign, run_campaign  # noqa: E402
from repro.scenarios.experiments import fault_model_campaign_spec  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: The per-regime tables lead with the fault-model costs, then the paper's
#: storage metrics.
METRICS = (
    "peak_retained",
    "final_retained",
    "collection_ratio",
    "control",
    "forced",
    "recoveries",
    "duplicated",
    "partition_blocked",
)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=max(os.cpu_count() or 1, 1),
        help="pool processes (default: all cores)",
    )
    parser.add_argument(
        "--seeds", type=int, default=5,
        help="seeded repetitions per grid point (default: 5)",
    )
    parser.add_argument(
        "--duration", type=float, default=120.0,
        help="simulated seconds per cell (default: 120)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run a seconds-sized slice (2 collectors, 2 seeds, short cells)",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="ignore (and overwrite) any existing result store",
    )
    parser.add_argument(
        "--traces", action="store_true",
        help="persist a replayable trace artifact per cell next to the store",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        if args.seeds != parser.get_default("seeds") or args.duration != parser.get_default(
            "duration"
        ):
            parser.error(
                "--seeds/--duration shape the full grid and cannot be combined with --smoke"
            )
        spec = fault_model_campaign_spec(
            num_processes=3,
            duration=50.0,
            num_seeds=2,
            collectors=(("rdt-lgc", {}), ("wang-coordinated", {"period": 15.0})),
        )
        store_name = "fault_models_smoke"
    else:
        spec = fault_model_campaign_spec(num_seeds=args.seeds, duration=args.duration)
        store_name = "fault_models"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    store_path = os.path.join(RESULTS_DIR, f"{store_name}.jsonl")
    if args.fresh and os.path.exists(store_path):
        os.remove(store_path)

    print(
        f"campaign {spec.name!r}: {spec.cell_count} cells "
        f"({len(spec.collectors)} collectors x {len(spec.networks)} network regimes x "
        f"{len(spec.failure_counts)} failure models x {len(spec.seeds)} seeds), "
        f"{args.workers} worker(s)"
    )
    trace_dir = os.path.join(RESULTS_DIR, f"{store_name}_traces") if args.traces else None
    started = time.perf_counter()
    run = run_campaign(
        spec, store_path=store_path, workers=args.workers, trace_dir=trace_dir
    )
    elapsed = time.perf_counter() - started

    if len(run.failed_records) == run.cell_count:
        for record in run.failed_records[:10]:
            print(f"  {record['cell_id']}: {record['error']}", file=sys.stderr)
        print("every cell failed; nothing to aggregate", file=sys.stderr)
        return 1
    summary = aggregate_campaign(
        run.records, group_by=("network", "collector", "failures"), metrics=METRICS
    )
    for _, table in summary.tables_by("network"):
        print()
        print(table.render())
    csv_path = os.path.join(RESULTS_DIR, f"{store_name}.csv")
    json_path = os.path.join(RESULTS_DIR, f"{store_name}.json")
    with open(csv_path, "w", encoding="utf-8") as handle:
        handle.write(summary.to_csv())
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(summary.to_json())

    rate = run.executed / elapsed if elapsed > 0 else float("inf")
    print()
    print(
        f"{run.cell_count} cells ({run.executed} executed, {run.resumed} resumed) "
        f"in {elapsed:.1f}s -> {rate:.1f} cells/s on {args.workers} worker(s)"
    )
    if run.failed_records:
        print(
            f"{len(run.failed_records)} cell(s) failed and were recorded as such "
            f"(collectors whose safety assumptions the adversarial transports "
            f"violate — the finding this sweep exists to surface)"
        )
    print(f"store: {store_path}")
    print(f"aggregates: {csv_path}, {json_path}")
    if trace_dir:
        print(f"replayable traces: {trace_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
