"""FIG-3: recovery-line determination and obsolete-checkpoint identification.

Regenerates the structure of Figure 3 on the equivalent 4-process scenario
(see ``repro.scenarios.figures``): the recovery line for ``F = {p2, p3}``,
the exclusion of ``p3``'s last stable checkpoint, and the Theorem-1 obsolete
set (including a "hole").  The benchmark times Lemma-1 line computation plus
the Theorem-1 oracle.
"""

from repro.analysis.tables import TextTable
from repro.core.obsolete import obsolete_per_process, obsolete_stable_checkpoints_theorem1
from repro.recovery.recovery_line import recovery_line, recovery_line_brute_force
from repro.scenarios.figures import figure3_ccp


def test_fig3_recovery_line(benchmark, emit_table):
    ccp = figure3_ccp()

    def analyse():
        line = recovery_line(ccp, [1, 2])
        obsolete = obsolete_stable_checkpoints_theorem1(ccp)
        return line, obsolete

    line, obsolete = benchmark(analyse)
    brute = recovery_line_brute_force(ccp, [1, 2])
    grouped = obsolete_per_process(ccp, obsolete)

    table = TextTable(
        ["quantity", "paper (Figure 3)", "measured (equivalent scenario)"],
        title="Figure 3 — recovery line for F = {p2, p3}",
    )
    excludes_last = line.indices[2] < ccp.last_stable(2)
    table.add_row("line excludes s3^last", "yes (s2^last -> s3^last)", excludes_last)
    table.add_row("line matches Definition 5", "unique by Lemma 1", line == brute)
    table.add_row("recovery line components", "last non-preceded per process", line.indices)
    table.add_row("obsolete checkpoints", "5 (incl. holes)", sum(len(g) for g in grouped))
    table.add_row("obsolete per process", "{c7_2,c9_2,c8_3,c6_4,c8_4}", grouped)
    emit_table("fig3_recovery_line", table.render())

    assert line == brute
    assert line.indices[1] == ccp.last_stable(1)
    assert line.indices[2] < ccp.last_stable(2)
    # The hole: an obsolete checkpoint between two retained ones of p1.
    assert 2 in grouped[0] and 1 not in grouped[0] and 3 not in grouped[0]
