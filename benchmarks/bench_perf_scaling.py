"""Perf scaling sweep: blocked bitset kernel + incremental CCP vs the old path.

For each (processes, messages) configuration the same seeded execution is
analysed at ``samples`` evenly spaced instants, the way the simulator's
``audit="full"`` mode samples a run, through both engines:

* **old path** (the pre-kernel architecture, kept as the executable
  reference): at every instant the CCP is rebuilt from the raw event log
  (fresh vector-clock replay) and the analyses are recomputed with
  :class:`~repro.ccp.zigzag.BruteForceZigzagAnalysis` message-level BFS plus
  uncached Theorem-1/2 and recovery-line oracles;
* **new path**: the :class:`~repro.simulation.trace.TraceRecorder` runs with
  ``incremental_analyses="on"`` — delta-maintained checkpoint knowledge
  serves the Theorem-1/2 retained sets and recovery lines, and the blocked
  bitset :class:`~repro.ccp.zigzag.ZigzagAnalysis` kernel answers the zigzag
  queries over the level-batched condensation DAG.

The sweep is organised in three tiers:

* ``small`` — the old path is measured at *every* instant;
* ``medium`` — the old path is minutes-slow per instant, so it is measured at
  the final ``OLD_PATH_TAIL_SAMPLES`` instants only (never fewer than 3
  measured samples per row: single-sample baselines were pure noise);
* ``large`` — datacenter-scale rows (up to 128 processes / 10^5 messages)
  run with obsolescence pruning (``prune=True``) and Theorem-1-driven
  eliminations between instants, the configuration the kernel is for.  The
  old path is **not** run at this scale; its per-instant cost is
  extrapolated from the measured 8-process rows via a power-law fit and the
  rows say so explicitly (``"old_extrapolated": true``).

A separate **memory pass** (tracemalloc, kept out of the timing loops — the
tracer costs ~2x) measures the peak traced allocation of a pruned versus an
unpruned medium-tier run, which is the ``memory`` section of the output and
the basis of the RSS regression gate in :mod:`benchmarks.check_regression`.

Results are written to ``BENCH_perf.json`` at the repository root so
:mod:`benchmarks.check_regression` (and future PRs) have a machine-readable
perf trajectory.

Run directly::

    python benchmarks/bench_perf_scaling.py              # small + medium
    python benchmarks/bench_perf_scaling.py --quick      # smoke-sized subset
    python benchmarks/bench_perf_scaling.py --tier large # datacenter tier
    python benchmarks/bench_perf_scaling.py --profile    # + cProfile per tier
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
import time
import tracemalloc
from typing import Any, Dict, List, Optional, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.ccp.checkpoint import CheckpointId  # noqa: E402
from repro.ccp.pattern import CCP  # noqa: E402
from repro.ccp.zigzag import BruteForceZigzagAnalysis  # noqa: E402
from repro.core.optimality import audit_garbage_collection  # noqa: E402
from repro.recovery.recovery_line import recovery_line  # noqa: E402
from repro.scenarios.random_patterns import (  # noqa: E402
    TraceFeeder,
    random_ccp_script,
)
from repro.simulation.trace import TraceRecorder  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_perf.json")

KERNEL_NAME = "zigzag-blocked-bitset+incremental-ccp"

# (processes, messages, samples), per tier.  The medium tier's final row is
# the acceptance-criteria configuration of the original kernel PR: a
# full-audit run at 8 processes and >= 2000 messages.  The large tier's
# 64-process row is the datacenter acceptance configuration: 10^5 messages
# analysed at < 50 ms per instant.
TIERS: Dict[str, List[Tuple[int, int, int]]] = {
    "small": [
        (2, 120, 3),
        (3, 200, 3),
        (4, 500, 4),
    ],
    "medium": [
        (8, 1000, 4),
        (8, 2000, 4),
    ],
    "large": [
        (32, 20000, 60),
        (64, 100000, 100),
        (128, 100000, 100),
    ],
}
FULL_SWEEP: List[Tuple[int, int, int]] = TIERS["small"] + TIERS["medium"]
SMOKE_SWEEP: List[Tuple[int, int, int]] = [(2, 120, 3), (3, 200, 3)]
LARGE_SWEEP: List[Tuple[int, int, int]] = TIERS["large"]
# Above this message count the old path is measured at the tail instants only.
OLD_PATH_EVERY_INSTANT_LIMIT = 500
# How many (final) instants the old path is measured at beyond that limit.
# Single-sample baselines made the committed speedups noise; three is the
# floor for a defensible mean.
OLD_PATH_TAIL_SAMPLES = 3
# The medium-tier configuration the memory pass compares pruned/unpruned at.
MEMORY_CONFIG: Tuple[int, int, int] = (8, 2000, 4)
SEED = 1
CHECKPOINT_RATE = 0.12


def _retained_everything(ccp: CCP) -> Dict[int, List[int]]:
    """A no-GC retained map: every stable checkpoint still on storage."""
    return {
        pid: [cid.index for cid in ccp.stable_ids(pid)] for pid in ccp.processes
    }


def _suite_new(recorder: TraceRecorder) -> Dict[str, int]:
    """The audited analysis suite through the incremental + bitset path."""
    ccp = recorder.ccp()
    zigzag = ccp.analyses.zigzag
    useless = zigzag.useless_checkpoints()
    pair_count = zigzag.zigzag_pair_count()
    audit = audit_garbage_collection(ccp, _retained_everything(ccp))
    line = recovery_line(ccp, [0])
    return {
        "useless": len(useless),
        "pairs": pair_count,
        "safety_violations": len(audit.safety_violations),
        "optimality_violations": len(audit.optimality_violations),
        "line_total": line.total_index(),
    }


def _suite_pruned(recorder: TraceRecorder) -> Dict[str, int]:
    """The analysis suite on a pruning recorder (large tier).

    Same analyses, but the retained map tracks the Theorem-1 eliminations the
    driver feeds back between instants, and the zigzag relation is counted
    (``zigzag_pair_count``) rather than materialised — at 10^5 messages the
    pair list itself would dominate the instant.
    """
    ccp = recorder.ccp()
    zigzag = ccp.analyses.zigzag
    useless = zigzag.useless_checkpoints()
    pair_count = zigzag.zigzag_pair_count()
    retained_t1 = ccp.analyses.theorem1_retained
    retained_t2 = ccp.analyses.theorem2_retained
    line = recovery_line(ccp, [0])
    return {
        "useless": len(useless),
        "pairs": pair_count,
        "retained_t1": len(retained_t1),
        "retained_t2": len(retained_t2),
        "line_total": line.total_index(),
    }


def _suite_old(recorder: TraceRecorder) -> Dict[str, int]:
    """The same suite through the old path: from-scratch CCP + brute force.

    Uses the literal per-checkpoint theorem transcriptions and the uncached
    Lemma-1 evaluation directly, *not* ``ccp.analyses`` — the cache's hoisted
    batch oracles are part of the new path being measured against.
    """
    from repro.core.obsolete import _is_retained_theorem1, _is_retained_theorem2
    from repro.recovery.recovery_line import _recovery_line_lemma1

    ccp = CCP(recorder.log, recorded_dvs=recorder.recorded_checkpoint_dvs())
    zigzag = BruteForceZigzagAnalysis(ccp)
    useless = zigzag.useless_checkpoints()
    pairs = zigzag.zigzag_pairs()
    all_stable = [cid for pid in ccp.processes for cid in ccp.stable_ids(pid)]
    required = {cid for cid in all_stable if _is_retained_theorem1(ccp, cid)}
    allowed = {cid for cid in all_stable if _is_retained_theorem2(ccp, cid)}
    retained_ids = {
        CheckpointId(pid, index)
        for pid, indices in _retained_everything(ccp).items()
        for index in indices
    }
    safety_violations = required - retained_ids
    optimality_violations = retained_ids - allowed
    line = _recovery_line_lemma1(ccp, {0})
    return {
        "useless": len(useless),
        "pairs": len(pairs),
        "safety_violations": len(safety_violations),
        "optimality_violations": len(optimality_violations),
        "line_total": line.total_index(),
    }


def _drive_theorem1_eliminations(recorder: TraceRecorder) -> None:
    """Feed the recorder the eliminations a Theorem-1 collector would emit.

    Untimed between-instant work of the large tier: everything the last
    analysis instant proved obsolete is declared garbage, which is what lets
    :meth:`TraceRecorder.maybe_prune` keep the log bounded by the live
    frontier.
    """
    ccp = recorder.ccp()
    retained = ccp.analyses.theorem1_retained
    for pid in range(recorder.num_processes):
        base = ccp.base_interval(pid)
        for index in range(base, recorder.checkpoints_taken[pid] - 1):
            if CheckpointId(pid, index) not in retained:
                recorder.record_elimination(pid, index)


def _sample_points(script_len: int, samples: int) -> List[int]:
    return sorted(
        {max(1, round(script_len * (i + 1) / samples)) for i in range(samples)}
    )


def run_config(
    num_processes: int,
    num_messages: int,
    samples: int,
    *,
    seed: int = SEED,
    trace_dir: Optional[str] = None,
    prune: bool = False,
) -> Dict[str, Any]:
    """Benchmark one configuration; returns a BENCH_perf.json row.

    With ``trace_dir`` the measured pattern is additionally persisted as a
    replayable :mod:`repro.traceio` artifact, so a regression seen in CI can
    be re-analysed offline against the *exact* pattern that was measured.
    With ``prune`` (the large tier) the recorder consumes Theorem-1
    eliminations between instants and compacts the log; the old path is not
    run and its cost is filled in by :func:`extrapolate_old_costs`.
    """
    script = random_ccp_script(
        seed,
        num_processes=num_processes,
        num_messages=num_messages,
        checkpoint_rate=CHECKPOINT_RATE,
    )
    recorder = TraceRecorder(
        num_processes, incremental_analyses="on", prune=prune
    )
    writer = None
    if trace_dir is not None:
        from repro.traceio.writer import TraceWriter

        writer = TraceWriter.scripted(
            os.path.join(
                trace_dir, f"perf_p{num_processes}_m{num_messages}.trace.jsonl"
            ),
            num_processes,
            seed=seed,
            workload=f"random_ccp_script(checkpoint_rate={CHECKPOINT_RATE})",
            meta={"suite": "bench_perf_scaling", "samples": samples},
        )
        recorder.attach_sink(writer)
    feeder = TraceFeeder(recorder)
    measure_old_everywhere = (
        not prune and num_messages <= OLD_PATH_EVERY_INSTANT_LIMIT
    )

    sample_points = _sample_points(len(script), samples)
    old_tail_points = (
        set() if prune else set(sample_points[-OLD_PATH_TAIL_SAMPLES:])
    )
    instant_times: List[float] = []
    old_total = 0.0
    old_instants = 0
    last_new: Optional[Dict[str, int]] = None
    last_old: Optional[Dict[str, int]] = None

    consumed = 0
    for point in sample_points:
        feeder.feed(script[consumed:point])
        consumed = point

        start = time.perf_counter()
        last_new = _suite_pruned(recorder) if prune else _suite_new(recorder)
        instant_times.append(time.perf_counter() - start)

        if prune:
            _drive_theorem1_eliminations(recorder)
        elif measure_old_everywhere or point in old_tail_points:
            start = time.perf_counter()
            last_old = _suite_old(recorder)
            old_total += time.perf_counter() - start
            old_instants += 1

    if writer is not None:
        writer.seal()
    assert last_new is not None
    if not prune:
        assert last_old is not None
        if last_new != last_old:
            raise AssertionError(
                f"old and new paths disagree at the final instant: "
                f"{last_old} != {last_new}"
            )

    ccp = recorder.ccp()
    new_per_instant = sum(instant_times) / len(instant_times)
    row: Dict[str, Any] = {
        "kernel": KERNEL_NAME,
        "processes": num_processes,
        "messages": num_messages,
        "samples": len(sample_points),
        "stable_checkpoints": ccp.total_stable_checkpoints(),
        "new_per_instant_s": round(new_per_instant, 6),
        "new_per_instant_max_s": round(max(instant_times), 6),
        "final_suite": last_new,
    }
    if prune:
        row["pruned"] = True
        row["pruned_events"] = recorder.pruned_events
        row["live_log_events"] = sum(
            len(recorder.log.history(pid)) for pid in range(num_processes)
        )
        row["old_extrapolated"] = True  # filled in by extrapolate_old_costs
    else:
        old_per_instant = old_total / old_instants
        row["old_instants_measured"] = old_instants
        row["old_per_instant_s"] = round(old_per_instant, 6)
        row["old_extrapolated"] = False
        row["speedup"] = round(old_per_instant / new_per_instant, 2)
    return row


def extrapolate_old_costs(rows: List[Dict[str, Any]]) -> None:
    """Fill in ``old_per_instant_s`` for rows the old path never ran on.

    Fits a power law ``cost ~ messages^k`` to the measured 8-process rows
    (the steepest measured configurations) and scales linearly in the process
    count beyond the reference.  The estimate is deliberately conservative —
    the old path's vector-clock replay alone is ``O(E * P)`` per instant —
    and the rows carry ``"old_extrapolated": true`` so nothing downstream can
    mistake it for a measurement.
    """
    measured = [
        row
        for row in rows
        if not row.get("old_extrapolated") and "old_per_instant_s" in row
    ]
    if not measured:
        return
    reference = max(measured, key=lambda row: (row["messages"], row["processes"]))
    same_procs = sorted(
        (row for row in measured if row["processes"] == reference["processes"]),
        key=lambda row: row["messages"],
    )
    exponent = 2.0
    if len(same_procs) >= 2 and same_procs[-1]["messages"] > same_procs[-2]["messages"]:
        a, b = same_procs[-2], same_procs[-1]
        ratio = b["old_per_instant_s"] / max(a["old_per_instant_s"], 1e-9)
        exponent = max(
            1.0, math.log(ratio) / math.log(b["messages"] / a["messages"])
        )
    for row in rows:
        if not row.get("old_extrapolated"):
            continue
        scale = (row["messages"] / reference["messages"]) ** exponent
        scale *= row["processes"] / reference["processes"]
        estimate = reference["old_per_instant_s"] * scale
        row["old_per_instant_s"] = round(estimate, 6)
        row["old_extrapolation_basis"] = (
            f"power-law fit (k={exponent:.2f}) on measured "
            f"{reference['processes']}-proc rows"
        )
        row["speedup"] = round(estimate / row["new_per_instant_s"], 2)


def measure_memory_pass(
    num_processes: int,
    num_messages: int,
    samples: int,
    *,
    seed: int = SEED,
    prune: bool,
    repeat: int = 3,
) -> int:
    """Peak traced allocation (bytes) of one feed-and-analyse run.

    Runs the exact workload of :func:`run_config` — feeding plus an analysis
    instant at every sample point, with Theorem-1 eliminations fed back when
    pruning — under :mod:`tracemalloc`.  Kept separate from the timing loops
    because the tracer roughly doubles the cost of every allocation.

    The run is repeated ``repeat`` times and the *minimum* peak reported: a
    single pass swings by tens of percent with cyclic-GC timing (transient
    tuples survive until whenever the collector happens to run), while the
    minimum tracks the structural footprint — the thing pruning bounds — and
    is stable across host and process state.
    """
    import gc

    script = random_ccp_script(
        seed,
        num_processes=num_processes,
        num_messages=num_messages,
        checkpoint_rate=CHECKPOINT_RATE,
    )
    peaks: List[int] = []
    for _ in range(max(1, repeat)):
        gc.collect()
        tracemalloc.start()
        try:
            if prune:
                recorder = TraceRecorder(num_processes, prune=True)
            else:
                # The unpruned reference runs the classic architecture: eager
                # vector-clock causal order plus full-recompute analyses.
                recorder = TraceRecorder(num_processes)
            feeder = TraceFeeder(recorder)
            consumed = 0
            for point in _sample_points(len(script), samples):
                feeder.feed(script[consumed:point])
                consumed = point
                if prune:
                    _suite_pruned(recorder)
                    _drive_theorem1_eliminations(recorder)
                else:
                    _suite_new(recorder)
            _, peak = tracemalloc.get_traced_memory()
        finally:
            tracemalloc.stop()
        peaks.append(peak)
    return min(peaks)


def run_memory_section(*, seed: int = SEED) -> Dict[str, Any]:
    """The pruned-versus-unpruned medium-tier memory comparison."""
    num_processes, num_messages, samples = MEMORY_CONFIG
    unpruned = measure_memory_pass(
        num_processes, num_messages, samples, seed=seed, prune=False
    )
    pruned = measure_memory_pass(
        num_processes, num_messages, samples, seed=seed, prune=True
    )
    return {
        "config": {
            "processes": num_processes,
            "messages": num_messages,
            "samples": samples,
        },
        "peak_unpruned_bytes": unpruned,
        "peak_pruned_bytes": pruned,
        "reduction": round(1.0 - pruned / unpruned, 4),
    }


def _warmup() -> None:
    """One unmeasured instant through both paths.

    First use pays one-time process costs (lazy imports inside the analysis
    cache, allocator warmup) that would otherwise be billed to the first —
    often smallest — measured configuration.
    """
    script = random_ccp_script(0, num_processes=2, num_messages=30)
    recorder = TraceRecorder(2, incremental_analyses="on")
    TraceFeeder(recorder).feed(script)
    _suite_new(recorder)
    _suite_old(recorder)


def run_sweep(
    configs: List[Tuple[int, int, int]],
    *,
    seed: int = SEED,
    trace_dir: Optional[str] = None,
    large_configs: Optional[List[Tuple[int, int, int]]] = None,
    memory: bool = False,
) -> Dict[str, Any]:
    """Run every configuration and assemble the BENCH_perf.json document."""
    _warmup()
    rows = []
    for num_processes, num_messages, samples in configs:
        row = run_config(
            num_processes, num_messages, samples, seed=seed, trace_dir=trace_dir
        )
        rows.append(row)
        print(
            f"  {num_processes} procs x {num_messages} msgs: "
            f"old {row['old_per_instant_s']:.4f}s/instant, "
            f"new {row['new_per_instant_s']:.4f}s/instant "
            f"({row['speedup']:.1f}x)"
        )
    for num_processes, num_messages, samples in large_configs or []:
        row = run_config(
            num_processes, num_messages, samples, seed=seed, prune=True
        )
        rows.append(row)
        print(
            f"  {num_processes} procs x {num_messages} msgs [pruned]: "
            f"new {row['new_per_instant_s']:.4f}s/instant "
            f"(max {row['new_per_instant_max_s']:.4f}s), "
            f"{row['pruned_events']} events pruned"
        )
    extrapolate_old_costs(rows)
    document: Dict[str, Any] = {
        "meta": {
            "suite": "bench_perf_scaling",
            "seed": seed,
            "checkpoint_rate": CHECKPOINT_RATE,
            "python": sys.version.split()[0],
            "description": (
                "Per-instant cost of the full audited analysis suite: "
                "old = from-scratch CCP + brute-force BFS oracles, "
                "new = delta-maintained TraceRecorder knowledge state + "
                "blocked bitset zigzag kernel + shared AnalysisCache; "
                "large rows run with obsolescence pruning."
            ),
        },
        "rows": rows,
    }
    if memory:
        document["memory"] = run_memory_section(seed=seed)
        section = document["memory"]
        print(
            f"  memory @ medium tier: unpruned "
            f"{section['peak_unpruned_bytes'] / 1e6:.1f} MB, pruned "
            f"{section['peak_pruned_bytes'] / 1e6:.1f} MB "
            f"(-{section['reduction'] * 100:.0f}%)"
        )
    return document


def _profile_tier(name: str, configs: List[Tuple[int, int, int]], seed: int) -> None:
    """cProfile one tier (its largest configuration) and print top-25 cumulative."""
    import cProfile
    import pstats

    num_processes, num_messages, samples = configs[-1]
    profiler = cProfile.Profile()
    profiler.enable()
    run_config(
        num_processes,
        num_messages,
        samples,
        seed=seed,
        prune=name == "large",
    )
    profiler.disable()
    print(f"\n--- cProfile [{name}] {num_processes}p x {num_messages}m "
          f"(top 25 cumulative) ---")
    pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="run only the smoke-sized subset"
    )
    parser.add_argument(
        "--tier",
        choices=["small", "medium", "large", "all"],
        default=None,
        help="run one tier (or every tier including large)",
    )
    parser.add_argument(
        "--output", default=OUTPUT_PATH, help="where to write the JSON document"
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--traces", default=None,
        help="directory for replayable artifacts of the measured patterns",
    )
    parser.add_argument(
        "--memory",
        action="store_true",
        help="also run the pruned-vs-unpruned memory pass (medium tier)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile each selected tier and print the top 25 cumulative entries",
    )
    args = parser.parse_args(argv)

    if args.quick:
        configs, large = SMOKE_SWEEP, []
        tiers = {"small": SMOKE_SWEEP}
    elif args.tier == "large":
        # The large tier still measures the medium rows: the extrapolation
        # needs fresh same-process measurements to fit against.
        configs, large = TIERS["medium"], LARGE_SWEEP
        tiers = {"medium": TIERS["medium"], "large": LARGE_SWEEP}
    elif args.tier == "all":
        configs, large = FULL_SWEEP, LARGE_SWEEP
        tiers = dict(TIERS)
    elif args.tier in ("small", "medium"):
        configs, large = TIERS[args.tier], []
        tiers = {args.tier: TIERS[args.tier]}
    else:
        configs, large = FULL_SWEEP, []
        tiers = {"small": TIERS["small"], "medium": TIERS["medium"]}

    print(f"bench_perf_scaling: {len(configs) + len(large)} configurations")
    document = run_sweep(
        configs,
        seed=args.seed,
        trace_dir=args.traces,
        large_configs=large,
        memory=args.memory,
    )
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    if args.profile:
        for name, tier_configs in tiers.items():
            _profile_tier(name, tier_configs, args.seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
