"""Perf scaling sweep: bitset kernel + incremental CCP vs the old path.

For each (processes, messages) configuration the same seeded execution is
analysed at ``samples`` evenly spaced instants, the way the simulator's
``audit="full"`` mode samples a run, through both engines:

* **old path** (the pre-kernel architecture, kept as the executable
  reference): at every instant the CCP is rebuilt from the raw event log
  (fresh vector-clock replay) and the analyses are recomputed with
  :class:`~repro.ccp.zigzag.BruteForceZigzagAnalysis` message-level BFS plus
  uncached Theorem-1/2 and recovery-line oracles;
* **new path**: the :class:`~repro.simulation.trace.TraceRecorder` serves its
  incrementally maintained CCP and the bitset
  :class:`~repro.ccp.zigzag.ZigzagAnalysis` kernel plus the shared
  :class:`~repro.ccp.analysis_cache.AnalysisCache` answer the same queries.

Each instant runs the full audited suite: useless checkpoints, the complete
zigzag relation, the Theorem-1/2 garbage-collection audit and one recovery
line.  Results are written to ``BENCH_perf.json`` at the repository root so
:mod:`benchmarks.check_regression` (and future PRs) have a machine-readable
perf trajectory.

On large configurations the old path is only measured at the final instant
(it is minutes-slow by design — that is the point of the kernel) and its
per-instant cost is reported from those measured instants; the ``speedup``
column is always a per-instant ratio, so the extrapolation is explicit, not
hidden.

Run directly::

    python benchmarks/bench_perf_scaling.py            # full sweep
    python benchmarks/bench_perf_scaling.py --quick    # smoke-sized subset
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.ccp.pattern import CCP  # noqa: E402
from repro.ccp.zigzag import BruteForceZigzagAnalysis, ZigzagAnalysis  # noqa: E402
from repro.core.optimality import audit_garbage_collection  # noqa: E402
from repro.recovery.recovery_line import recovery_line  # noqa: E402
from repro.scenarios.random_patterns import (  # noqa: E402
    TraceFeeder,
    random_ccp_script,
)
from repro.simulation.trace import TraceRecorder  # noqa: E402

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OUTPUT_PATH = os.path.join(REPO_ROOT, "BENCH_perf.json")

# (processes, messages, samples). The final row is the acceptance-criteria
# configuration: a full-audit run at 8 processes and >= 2000 messages.
FULL_SWEEP: List[Tuple[int, int, int]] = [
    (2, 120, 3),
    (3, 200, 3),
    (4, 500, 4),
    (8, 1000, 4),
    (8, 2000, 4),
]
SMOKE_SWEEP: List[Tuple[int, int, int]] = [(2, 120, 3), (3, 200, 3)]
# Above this message count the old path is measured at the final instant only.
OLD_PATH_EVERY_INSTANT_LIMIT = 500
SEED = 1
CHECKPOINT_RATE = 0.12


def _retained_everything(ccp: CCP) -> Dict[int, List[int]]:
    """A no-GC retained map: every stable checkpoint still on storage."""
    return {
        pid: [cid.index for cid in ccp.stable_ids(pid)] for pid in ccp.processes
    }


def _suite_new(recorder: TraceRecorder) -> Dict[str, int]:
    """The audited analysis suite through the incremental + bitset path."""
    ccp = recorder.ccp()
    zigzag = ccp.analyses.zigzag
    useless = zigzag.useless_checkpoints()
    pairs = zigzag.zigzag_pairs()
    audit = audit_garbage_collection(ccp, _retained_everything(ccp))
    line = recovery_line(ccp, [0])
    return {
        "useless": len(useless),
        "pairs": len(pairs),
        "safety_violations": len(audit.safety_violations),
        "optimality_violations": len(audit.optimality_violations),
        "line_total": line.total_index(),
    }


def _suite_old(recorder: TraceRecorder) -> Dict[str, int]:
    """The same suite through the old path: from-scratch CCP + brute force.

    Uses the literal per-checkpoint theorem transcriptions and the uncached
    Lemma-1 evaluation directly, *not* ``ccp.analyses`` — the cache's hoisted
    batch oracles are part of the new path being measured against.
    """
    from repro.ccp.checkpoint import CheckpointId
    from repro.core.obsolete import _is_retained_theorem1, _is_retained_theorem2
    from repro.recovery.recovery_line import _recovery_line_lemma1

    ccp = CCP(recorder.log, recorded_dvs=recorder.recorded_checkpoint_dvs())
    zigzag = BruteForceZigzagAnalysis(ccp)
    useless = zigzag.useless_checkpoints()
    pairs = zigzag.zigzag_pairs()
    all_stable = [cid for pid in ccp.processes for cid in ccp.stable_ids(pid)]
    required = {cid for cid in all_stable if _is_retained_theorem1(ccp, cid)}
    allowed = {cid for cid in all_stable if _is_retained_theorem2(ccp, cid)}
    retained_ids = {
        CheckpointId(pid, index)
        for pid, indices in _retained_everything(ccp).items()
        for index in indices
    }
    safety_violations = required - retained_ids
    optimality_violations = retained_ids - allowed
    line = _recovery_line_lemma1(ccp, {0})
    return {
        "useless": len(useless),
        "pairs": len(pairs),
        "safety_violations": len(safety_violations),
        "optimality_violations": len(optimality_violations),
        "line_total": line.total_index(),
    }


def run_config(
    num_processes: int,
    num_messages: int,
    samples: int,
    *,
    seed: int = SEED,
    trace_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Benchmark one configuration; returns a BENCH_perf.json row.

    With ``trace_dir`` the measured pattern is additionally persisted as a
    replayable :mod:`repro.traceio` artifact, so a regression seen in CI can
    be re-analysed offline against the *exact* pattern that was measured.
    """
    script = random_ccp_script(
        seed,
        num_processes=num_processes,
        num_messages=num_messages,
        checkpoint_rate=CHECKPOINT_RATE,
    )
    recorder = TraceRecorder(num_processes)
    writer = None
    if trace_dir is not None:
        from repro.traceio.writer import TraceWriter

        writer = TraceWriter.scripted(
            os.path.join(
                trace_dir, f"perf_p{num_processes}_m{num_messages}.trace.jsonl"
            ),
            num_processes,
            seed=seed,
            workload=f"random_ccp_script(checkpoint_rate={CHECKPOINT_RATE})",
            meta={"suite": "bench_perf_scaling", "samples": samples},
        )
        recorder.attach_sink(writer)
    feeder = TraceFeeder(recorder)
    measure_old_everywhere = num_messages <= OLD_PATH_EVERY_INSTANT_LIMIT

    sample_points = sorted(
        {max(1, round(len(script) * (i + 1) / samples)) for i in range(samples)}
    )
    new_total = 0.0
    old_total = 0.0
    old_instants = 0
    new_instants = 0
    last_new: Optional[Dict[str, int]] = None
    last_old: Optional[Dict[str, int]] = None

    consumed = 0
    for point in sample_points:
        feeder.feed(script[consumed:point])
        consumed = point
        is_final = point == sample_points[-1]

        start = time.perf_counter()
        last_new = _suite_new(recorder)
        new_total += time.perf_counter() - start
        new_instants += 1

        if measure_old_everywhere or is_final:
            start = time.perf_counter()
            last_old = _suite_old(recorder)
            old_total += time.perf_counter() - start
            old_instants += 1

    if writer is not None:
        writer.seal()
    assert last_new is not None and last_old is not None
    if last_new != last_old:
        raise AssertionError(
            f"old and new paths disagree at the final instant: "
            f"{last_old} != {last_new}"
        )

    ccp = recorder.ccp()
    old_per_instant = old_total / old_instants
    new_per_instant = new_total / new_instants
    return {
        "kernel": "zigzag-bitset+incremental-ccp",
        "processes": num_processes,
        "messages": num_messages,
        "samples": len(sample_points),
        "stable_checkpoints": ccp.total_stable_checkpoints(),
        "old_instants_measured": old_instants,
        "old_per_instant_s": round(old_per_instant, 6),
        "new_per_instant_s": round(new_per_instant, 6),
        "speedup": round(old_per_instant / new_per_instant, 2),
        "final_suite": last_new,
    }


def _warmup() -> None:
    """One unmeasured instant through both paths.

    First use pays one-time process costs (lazy imports inside the analysis
    cache, allocator warmup) that would otherwise be billed to the first —
    often smallest — measured configuration.
    """
    script = random_ccp_script(0, num_processes=2, num_messages=30)
    recorder = TraceRecorder(2)
    TraceFeeder(recorder).feed(script)
    _suite_new(recorder)
    _suite_old(recorder)


def run_sweep(
    configs: List[Tuple[int, int, int]],
    *,
    seed: int = SEED,
    trace_dir: Optional[str] = None,
) -> Dict[str, Any]:
    """Run every configuration and assemble the BENCH_perf.json document."""
    _warmup()
    rows = []
    for num_processes, num_messages, samples in configs:
        row = run_config(
            num_processes, num_messages, samples, seed=seed, trace_dir=trace_dir
        )
        rows.append(row)
        print(
            f"  {num_processes} procs x {num_messages} msgs: "
            f"old {row['old_per_instant_s']:.4f}s/instant, "
            f"new {row['new_per_instant_s']:.4f}s/instant "
            f"({row['speedup']:.1f}x)"
        )
    return {
        "meta": {
            "suite": "bench_perf_scaling",
            "seed": seed,
            "checkpoint_rate": CHECKPOINT_RATE,
            "python": sys.version.split()[0],
            "description": (
                "Per-instant cost of the full audited analysis suite: "
                "old = from-scratch CCP + brute-force BFS oracles, "
                "new = incremental TraceRecorder CCP + bitset zigzag kernel "
                "+ shared AnalysisCache."
            ),
        },
        "rows": rows,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true", help="run only the smoke-sized subset"
    )
    parser.add_argument(
        "--output", default=OUTPUT_PATH, help="where to write the JSON document"
    )
    parser.add_argument("--seed", type=int, default=SEED)
    parser.add_argument(
        "--traces", default=None,
        help="directory for replayable artifacts of the measured patterns",
    )
    args = parser.parse_args(argv)

    configs = SMOKE_SWEEP if args.quick else FULL_SWEEP
    print(f"bench_perf_scaling: {len(configs)} configurations")
    document = run_sweep(configs, seed=args.seed, trace_dir=args.traces)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
