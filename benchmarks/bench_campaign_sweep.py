"""The paper's collector-comparison study as one resumable campaign sweep.

Runs the full evaluation grid — all 5 collectors × 4 workload shapes ×
failure levels × ≥10 seeds — through :mod:`repro.scenarios.campaign` on a
worker pool, and writes:

* the JSONL result store (``benchmarks/results/campaign_paper_grid.jsonl``) —
  re-running the benchmark resumes from it instead of recomputing;
* the aggregate tables (text to stdout, CSV/JSON next to the store);
* a throughput line (cells/second, worker count) for the perf trajectory.

Run directly::

    python benchmarks/bench_campaign_sweep.py                 # full grid, pool
    python benchmarks/bench_campaign_sweep.py --workers 2
    python benchmarks/bench_campaign_sweep.py --smoke         # seconds-sized
    python benchmarks/bench_campaign_sweep.py --fresh         # ignore the store
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from typing import List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.scenarios.campaign import aggregate_campaign, run_campaign  # noqa: E402
from repro.scenarios.experiments import (  # noqa: E402
    paper_campaign_spec,
    smoke_campaign_spec,
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers", type=int, default=max(os.cpu_count() or 1, 1),
        help="pool processes (default: all cores)",
    )
    parser.add_argument(
        "--seeds", type=int, default=10,
        help="seeded repetitions per grid point (default: 10)",
    )
    parser.add_argument(
        "--duration", type=float, default=120.0,
        help="simulated seconds per cell (default: 120)",
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="run the seconds-sized smoke grid instead of the paper grid",
    )
    parser.add_argument(
        "--fresh", action="store_true",
        help="ignore (and overwrite) any existing result store",
    )
    parser.add_argument(
        "--traces", action="store_true",
        help="persist a replayable trace artifact per cell next to the store "
             "(re-aggregate/re-audit later with `python -m repro.traceio replay`)",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # The smoke grid is fixed-shape; accepting the sizing flags alongside
        # it would silently run a different sweep than the user asked for.
        if args.seeds != parser.get_default("seeds") or args.duration != parser.get_default(
            "duration"
        ):
            parser.error(
                "--seeds/--duration shape the paper grid and cannot be combined with --smoke"
            )
        spec = smoke_campaign_spec()
        store_name = "campaign_smoke_grid"
    else:
        spec = paper_campaign_spec(num_seeds=args.seeds, duration=args.duration)
        store_name = "campaign_paper_grid"
    os.makedirs(RESULTS_DIR, exist_ok=True)
    store_path = os.path.join(RESULTS_DIR, f"{store_name}.jsonl")
    if args.fresh and os.path.exists(store_path):
        os.remove(store_path)

    print(
        f"campaign {spec.name!r}: {spec.cell_count} cells "
        f"({len(spec.collectors)} collectors x {len(spec.workloads)} workloads x "
        f"{len(spec.failure_counts)} failure levels x {len(spec.seeds)} seeds), "
        f"{args.workers} worker(s)"
    )
    trace_dir = os.path.join(RESULTS_DIR, f"{store_name}_traces") if args.traces else None
    started = time.perf_counter()
    run = run_campaign(
        spec, store_path=store_path, workers=args.workers, trace_dir=trace_dir
    )
    elapsed = time.perf_counter() - started

    if len(run.failed_records) == run.cell_count:
        for record in run.failed_records[:10]:
            print(f"  {record['cell_id']}: {record['error']}", file=sys.stderr)
        print("every cell failed; nothing to aggregate", file=sys.stderr)
        return 1
    summary = aggregate_campaign(run.records)
    for _, table in summary.tables_by("workload"):
        print()
        print(table.render())
    csv_path = os.path.join(RESULTS_DIR, f"{store_name}.csv")
    json_path = os.path.join(RESULTS_DIR, f"{store_name}.json")
    with open(csv_path, "w", encoding="utf-8") as handle:
        handle.write(summary.to_csv())
    with open(json_path, "w", encoding="utf-8") as handle:
        handle.write(summary.to_json())

    rate = run.executed / elapsed if elapsed > 0 else float("inf")
    print()
    print(
        f"{run.cell_count} cells ({run.executed} executed, {run.resumed} resumed) "
        f"in {elapsed:.1f}s -> {rate:.1f} cells/s on {args.workers} worker(s)"
    )
    if run.failed_records:
        print(
            f"{len(run.failed_records)} cell(s) failed and were recorded as such "
            f"(the unsafe time-based collector under crash injection — the "
            f"paper's predicted failure mode)"
        )
    print(f"store: {store_path}")
    print(f"aggregates: {csv_path}, {json_path}")
    if trace_dir:
        print(f"replayable traces: {trace_dir}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
