"""EVAL-ROLLBACK: lost work under failures, per garbage collector.

Injects crashes into identical executions running different collectors and
reports the recovery sessions: rolled-back processes, lost general checkpoints
and checkpoints collected during recovery.  The key sanity property (and the
reason garbage collection is allowed at all): the choice of collector never
changes the recovery line, because only obsolete checkpoints are discarded.
RDT protocols also keep the lost work bounded — no domino effect.
"""

from repro.analysis.tables import TextTable
from repro.scenarios.experiments import run_random_simulation

COLLECTORS = [
    ("none", {}),
    ("rdt-lgc", {}),
    ("wang-coordinated", {"period": 20.0}),
]


def test_eval_rollback(benchmark, emit_table):
    def run_all():
        results = {}
        for collector, options in COLLECTORS:
            results[collector] = run_random_simulation(
                num_processes=4,
                duration=200.0,
                seed=13,
                collector=collector,
                collector_options=options,
                crashes=3,
                audit="safety",
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = TextTable(
        [
            "collector",
            "recoveries",
            "recovery lines",
            "lost checkpoints",
            "rolled-back processes",
            "safe",
        ],
        title="Lost work under failures (identical workload and crash schedule)",
    )
    for collector, _ in COLLECTORS:
        result = results[collector]
        table.add_row(
            collector,
            len(result.recoveries),
            [r.recovery_line for r in result.recoveries],
            sum(r.lost_general_checkpoints for r in result.recoveries),
            sum(r.rolled_back_processes for r in result.recoveries),
            result.all_audits_safe,
        )
    emit_table("eval_rollback", table.render())

    baseline = results["none"]
    assert len(baseline.recoveries) == 3
    for collector, _ in COLLECTORS:
        result = results[collector]
        assert result.all_audits_safe
        # Garbage collection never changes what recovery restores.
        assert [r.recovery_line for r in result.recoveries] == [
            r.recovery_line for r in baseline.recoveries
        ]
        assert [r.lost_general_checkpoints for r in result.recoveries] == [
            r.lost_general_checkpoints for r in baseline.recoveries
        ]
        # Bounded rollback: far from the domino effect.
        for record in result.recoveries:
            assert record.lost_general_checkpoints <= 3 * 4
