"""Explorer throughput and reduction-ratio benchmark.

Measures the schedule-space explorer on the canonical ring configurations:
states (prefix executions) per second, complete schedules per second, and
the sleep-set reduction ratio — executions with the reduction disabled
divided by executions with it enabled, on the same configuration (the naive
enumeration is run only at sizes where it stays in seconds).

Writes ``benchmarks/results/BENCH_explore.json`` with one row per measured
configuration.  Run directly::

    python benchmarks/bench_explore.py            # full matrix
    python benchmarks/bench_explore.py --smoke    # seconds-sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.explore import ExploreConfig, explore, ring_program  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: (processes, messages, also-run-naive-enumeration)
FULL_MATRIX = ((2, 2, True), (2, 4, True), (2, 6, False), (3, 4, False))
SMOKE_MATRIX = ((2, 2, True), (2, 3, True))


def _measure(
    num_processes: int, messages: int, *, reduction: bool, budget: Optional[int]
) -> Dict[str, Any]:
    config = ExploreConfig(
        num_processes=num_processes,
        program=ring_program(num_processes, messages),
    )
    started = time.perf_counter()
    result = explore(config, reduction=reduction, max_executions=budget)
    elapsed = time.perf_counter() - started
    if not result.ok:
        raise SystemExit(
            f"benchmark configuration violated an oracle: {result.first.violation}"
        )
    stats = result.stats
    return {
        "executions": stats.executions,
        "schedules": stats.schedules,
        "sleep_pruned": stats.sleep_pruned,
        "complete": stats.complete,
        "seconds": round(elapsed, 4),
        "states_per_second": round(stats.executions / elapsed, 1) if elapsed else None,
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="seconds-sized matrix")
    parser.add_argument(
        "--max-executions", type=int, default=None,
        help="budget per configuration (default: exhaustive)",
    )
    parser.add_argument(
        "--output", default=os.path.join(RESULTS_DIR, "BENCH_explore.json"),
        help="result document path",
    )
    args = parser.parse_args(argv)

    matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    rows: List[Dict[str, Any]] = []
    print(f"{'config':>14} {'reduced':>22} {'naive':>22} {'ratio':>7}")
    for num_processes, messages, with_naive in matrix:
        reduced = _measure(
            num_processes, messages, reduction=True, budget=args.max_executions
        )
        naive = (
            _measure(
                num_processes, messages, reduction=False,
                budget=args.max_executions,
            )
            if with_naive
            else None
        )
        ratio = (
            round(naive["executions"] / reduced["executions"], 2)
            if naive and reduced["executions"]
            else None
        )
        rows.append(
            {
                "processes": num_processes,
                "messages": messages,
                "reduced": reduced,
                "naive": naive,
                "reduction_ratio": ratio,
            }
        )
        reduced_text = f"{reduced['executions']}ex/{reduced['seconds']}s"
        naive_text = (
            f"{naive['executions']}ex/{naive['seconds']}s" if naive else "-"
        )
        print(
            f"{num_processes}p/{messages}m{'':>8} {reduced_text:>22} "
            f"{naive_text:>22} {ratio if ratio is not None else '-':>7}"
        )
    throughput = [
        row["reduced"]["states_per_second"]
        for row in rows
        if row["reduced"]["states_per_second"]
    ]
    print(
        f"peak throughput: {max(throughput):.0f} states/s over "
        f"{len(rows)} configurations"
    )
    os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump({"matrix": rows}, handle, indent=2)
        handle.write("\n")
    print(f"results written to {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
