"""FIG-4: the annotated RDT-LGC execution, regenerated value for value.

Replays the Figure 4 execution against real RdtLgc instances, compares every
printed ``DV``/``UC`` annotation, the checkpoints eliminated online and the
single obsolete-but-unidentifiable checkpoint, and times the replay.
"""

from repro.analysis.tables import TextTable
from repro.ccp.checkpoint import CheckpointId
from repro.core.obsolete import (
    obsolete_stable_checkpoints_theorem1,
    obsolete_stable_checkpoints_theorem2,
)
from repro.core.rdt_lgc import RdtLgc
from repro.scenarios.figures import (
    FIGURE4_ANNOTATIONS,
    FIGURE4_EXPECTED_FINAL,
    drive_figure4,
    figure4_ccp,
)
from repro.viz.ascii_diagram import render_gc_trace


def test_fig4_rdt_lgc_execution(benchmark, emit_table):
    def replay():
        gcs = [RdtLgc(pid, 3) for pid in range(3)]
        steps = drive_figure4(gcs)
        return gcs, steps

    gcs, steps = benchmark(replay)
    observed = {label: (dv, uc) for label, dv, uc in steps}
    mismatches = [
        label
        for label, expected in FIGURE4_ANNOTATIONS.items()
        if observed[label] != expected
    ]
    eliminated = {
        CheckpointId(pid, index)
        for pid, gc in enumerate(gcs)
        for index in gc.collected_indices()
    }
    ccp = figure4_ccp()
    theorem1 = obsolete_stable_checkpoints_theorem1(ccp)
    theorem2 = obsolete_stable_checkpoints_theorem2(ccp)

    table = TextTable(
        ["quantity", "paper (Figure 4)", "measured"],
        title="Figure 4 — RDT-LGC execution",
    )
    table.add_row("annotated (DV, UC) states matching", "16 / 16", f"{16 - len(mismatches)} / 16")
    eliminated_text = sorted(str(c) for c in eliminated)
    table.add_row("checkpoints eliminated online", "s2^2, s3^1, s3^2", eliminated_text)
    table.add_row(
        "obsolete but retained",
        "s2^1 (p2 unaware of p3's progress)",
        sorted(str(c) for c in (theorem1 - eliminated)),
    )
    table.add_row("eliminated == Theorem-2 set (optimality)", True, eliminated == theorem2)
    emit_table(
        "fig4_rdt_lgc_execution",
        table.render() + "\n\n" + render_gc_trace(steps),
    )

    assert mismatches == []
    assert eliminated == {CheckpointId(1, 2), CheckpointId(2, 1), CheckpointId(2, 2)}
    assert theorem1 - eliminated == {CheckpointId(1, 1)}
    for pid, expectations in FIGURE4_EXPECTED_FINAL.items():
        assert gcs[pid].retained_indices() == expectations["retained"]
