"""Fuzzer benchmark: coverage guidance vs unguided random mutation.

Runs the coverage-guided fuzzer and its no-feedback baseline (stacked
random mutation of the seed schedules, no corpus retention — the same
mutation operators and seeds, with only the coverage feedback loop removed)
on the same targets, budgets and run seeds, and compares the number of
distinct coverage features each reaches.  The claim under test is the
fuzzer's reason to exist: the coverage signal — novel zigzag shapes,
R-graph SCC structure, retained-set sizes, recovery-line depths — steers
the mutation budget toward structurally new executions.

The gate: summed over the matrix, guided coverage must be **strictly
greater** than unguided coverage (``--require-guided-win``; the CI fuzz
gate passes the flag).  Per-cell ties are tolerated — tiny targets
saturate — but the aggregate must favour guidance.

Writes ``benchmarks/results/BENCH_fuzz.json``.  Run directly::

    python benchmarks/bench_fuzz.py            # full matrix
    python benchmarks/bench_fuzz.py --smoke    # seconds-sized
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
_SRC = os.path.join(_REPO_ROOT, "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.fuzz import fuzz  # noqa: E402

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")

#: (target, budget, run seeds)
FULL_MATRIX = (
    ("ring", 150, (0, 1)),
    ("ring-crash", 150, (0, 1)),
    ("ring3-crash", 200, (0, 1, 2)),
)
SMOKE_MATRIX = (
    ("ring", 100, (0,)),
    ("ring3-crash", 120, (0,)),
)


def _measure(target: str, budget: int, seed: int, *, guided: bool) -> Dict[str, Any]:
    started = time.perf_counter()
    result = fuzz(
        target,
        budget=budget,
        seed=seed,
        guided=guided,
        minimize=False,
        explorer_seed_executions=0,
    )
    elapsed = time.perf_counter() - started
    if not result.ok:
        raise SystemExit(
            f"benchmark target {target} violated an oracle: "
            f"{result.findings[0].violation}"
        )
    stats = result.stats
    return {
        "executions": stats.executions,
        "features": stats.features,
        "corpus": len(result.corpus),
        "duplicates": stats.duplicates,
        "invalid": stats.invalid,
        "dimension_counts": stats.dimension_counts,
        "seconds": round(elapsed, 4),
        "execs_per_second": (
            round(stats.executions / elapsed, 1) if elapsed else None
        ),
    }


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="seconds-sized matrix")
    parser.add_argument(
        "--require-guided-win", action="store_true",
        help="exit 1 unless guided coverage strictly exceeds unguided "
             "coverage summed over the matrix (the CI gate)",
    )
    parser.add_argument(
        "--output", default=os.path.join(RESULTS_DIR, "BENCH_fuzz.json"),
        help="result document path",
    )
    args = parser.parse_args(argv)

    matrix = SMOKE_MATRIX if args.smoke else FULL_MATRIX
    rows: List[Dict[str, Any]] = []
    guided_total = 0
    unguided_total = 0
    print(f"{'cell':>24} {'guided':>16} {'random':>16} {'delta':>7}")
    for target, budget, seeds in matrix:
        for seed in seeds:
            guided = _measure(target, budget, seed, guided=True)
            unguided = _measure(target, budget, seed, guided=False)
            guided_total += guided["features"]
            unguided_total += unguided["features"]
            rows.append(
                {
                    "target": target,
                    "budget": budget,
                    "seed": seed,
                    "guided": guided,
                    "unguided": unguided,
                    "delta": guided["features"] - unguided["features"],
                }
            )
            cell = f"{target}/b{budget}/s{seed}"
            guided_text = f"{guided['features']}f/{guided['seconds']}s"
            unguided_text = f"{unguided['features']}f/{unguided['seconds']}s"
            print(
                f"{cell:>24} {guided_text:>16} {unguided_text:>16} "
                f"{guided['features'] - unguided['features']:>+7}"
            )
    print(
        f"total coverage: guided {guided_total} vs unguided {unguided_total} "
        f"over {len(rows)} cells"
    )
    os.makedirs(os.path.dirname(os.path.abspath(args.output)), exist_ok=True)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(
            {
                "matrix": rows,
                "guided_total": guided_total,
                "unguided_total": unguided_total,
            },
            handle,
            indent=2,
        )
        handle.write("\n")
    print(f"results written to {args.output}")
    if args.require_guided_win and guided_total <= unguided_total:
        print(
            "error: coverage guidance did not beat random mutation "
            f"({guided_total} <= {unguided_total})",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
