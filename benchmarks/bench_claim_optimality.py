"""CLAIM-OPT: Theorems 4 and 5 — RDT-LGC is safe and optimal.

Runs randomized executions (several protocols, seeds and failure injections),
audits the retained checkpoints of every process against the Theorem-1 and
Theorem-2 oracles after every recovery session and at the end of each run, and
reports the number of violations (the paper's claim: zero of each).
"""

from repro.analysis.tables import TextTable
from repro.scenarios.experiments import run_random_simulation

SCENARIOS = [
    ("fdas", 0, 0),
    ("fdas", 1, 2),
    ("fdi", 2, 1),
    ("cbr", 3, 0),
    ("fdas", 4, 3),
]


def test_claim_optimality(benchmark, emit_table):
    def audit_all():
        results = []
        for protocol, seed, crashes in SCENARIOS:
            results.append(
                (
                    protocol,
                    seed,
                    crashes,
                    run_random_simulation(
                        num_processes=4,
                        duration=120.0,
                        seed=seed,
                        protocol=protocol,
                        collector="rdt-lgc",
                        crashes=crashes,
                        audit="full",
                    ),
                )
            )
        return results

    results = benchmark.pedantic(audit_all, rounds=1, iterations=1)

    table = TextTable(
        ["protocol", "seed", "crashes", "audits", "safety violations", "optimality violations"],
        title="Theorem 4 (safety) and Theorem 5 (optimality) audits",
    )
    for protocol, seed, crashes, result in results:
        table.add_row(
            protocol,
            seed,
            crashes,
            len(result.audits),
            sum(a.safety_violations for a in result.audits),
            sum(a.optimality_violations for a in result.audits),
        )
    emit_table("claim_optimality", table.render())

    for _, _, _, result in results:
        assert result.all_audits_safe
        assert result.all_audits_optimal
