"""EVAL-STORAGE: the empirical evaluation the paper defers to future work.

Compares every garbage collector on several workload shapes: storage occupancy
(peak, mean and final), collection ratio and control-message cost.  The
expected qualitative shape: no-GC grows without bound; RDT-LGC bounds every
process at ``n`` checkpoints with zero control messages; the coordinated
schemes collect at least as much but pay control messages; the recovery-line
scheme keeps more than Wang's because it cannot collect "holes".
"""

import pytest

from repro.analysis.storage import summarize_occupancy
from repro.analysis.tables import TextTable
from repro.scenarios.experiments import run_random_simulation
from repro.simulation.workloads import (
    ClientServerWorkload,
    PipelineWorkload,
    RingWorkload,
    UniformRandomWorkload,
)

COLLECTORS = [
    ("none", {}),
    ("rdt-lgc", {}),
    ("all-process-line", {"period": 20.0}),
    ("wang-coordinated", {"period": 20.0}),
    ("manivannan-singhal", {"checkpoint_period": 8.0, "max_message_delay": 3.0}),
]

WORKLOADS = {
    "uniform-random": lambda: UniformRandomWorkload(mean_checkpoint_gap=6.0),
    "client-server": lambda: ClientServerWorkload(),
    "pipeline": lambda: PipelineWorkload(),
    "ring": lambda: RingWorkload(),
}


@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_eval_storage_comparison(benchmark, emit_table, workload_name):
    num_processes = 4

    def run_all():
        results = {}
        for collector, options in COLLECTORS:
            results[collector] = run_random_simulation(
                num_processes=num_processes,
                duration=200.0,
                seed=7,
                collector=collector,
                collector_options=options,
                workload=WORKLOADS[workload_name](),
                audit="safety",
            )
        return results

    results = benchmark.pedantic(run_all, rounds=1, iterations=1)

    table = TextTable(
        [
            "collector",
            "peak total",
            "mean total",
            "final total",
            "max/process",
            "collected %",
            "control msgs",
            "safe",
        ],
        title=f"Storage occupancy comparison — {workload_name}, n = {num_processes}",
    )
    for collector, _ in COLLECTORS:
        result = results[collector]
        occupancy = summarize_occupancy(result)
        table.add_row(
            collector,
            occupancy.peak_total,
            occupancy.mean_total,
            occupancy.final_total,
            result.max_retained_any_process,
            round(100 * result.collection_ratio, 1),
            result.control_messages,
            result.all_audits_safe,
        )
    emit_table(f"eval_storage_{workload_name}", table.render())

    none_result = results["none"]
    lgc = results["rdt-lgc"]
    wang = results["wang-coordinated"]
    line = results["all-process-line"]
    # Every collector is safe.
    assert all(results[name].all_audits_safe for name, _ in COLLECTORS)
    # No-GC keeps everything; RDT-LGC bounds the per-process occupancy at n.
    assert none_result.total_collected == 0
    assert all(r <= num_processes for r in lgc.retained_final)
    assert lgc.total_retained_final < none_result.total_retained_final
    # Asynchronous vs coordinated: the control-message cost is real.
    assert lgc.control_messages == 0
    assert wang.control_messages > 0 and line.control_messages > 0
    # Wang collects everything obsolete, so it never keeps more than the
    # recovery-line scheme.
    assert wang.total_retained_final <= line.total_retained_final
