"""FIG-1: regenerate the facts illustrated by Figure 1.

The benchmark rebuilds the example CCP, re-derives every statement the paper
makes about it (path classifications, consistency of the two highlighted
global checkpoints, RD-trackability with and without ``m3``) and times the
zigzag/RDT analysis machinery on it.
"""

from repro.analysis.tables import TextTable
from repro.ccp.checkpoint import CheckpointId
from repro.ccp.consistency import GlobalCheckpoint, is_consistent_global_checkpoint
from repro.ccp.rdt import check_rdt
from repro.ccp.zigzag import ZigzagAnalysis
from repro.scenarios.figures import figure1_ccp
from repro.viz.ascii_diagram import render_ccp


def test_fig1_example_ccp(benchmark, emit_table):
    ccp = figure1_ccp()

    def analyse():
        analysis = ZigzagAnalysis(ccp)
        return {
            "[m1,m2] causal": analysis.is_causal_sequence([0, 1]),
            "[m1,m4] causal": analysis.is_causal_sequence([0, 2]),
            "[m5,m4] zigzag": analysis.is_zigzag_sequence(
                [3, 2], CheckpointId(0, 1), CheckpointId(2, 2)
            ),
            "[m5,m4] causal": analysis.is_causal_sequence([3, 2]),
            "rdt": check_rdt(ccp, analysis=analysis, collect_witnesses=False).is_rdt,
        }

    facts = benchmark(analyse)
    without_m3 = figure1_ccp(include_m3=False)
    consistent = is_consistent_global_checkpoint(
        ccp, GlobalCheckpoint((ccp.volatile_index(0), 1, 1))
    )
    inconsistent = is_consistent_global_checkpoint(ccp, GlobalCheckpoint((0, 1, 1)))

    table = TextTable(["fact", "paper", "measured"], title="Figure 1 — example CCP")
    table.add_row("[m1, m2] is a C-path", True, facts["[m1,m2] causal"])
    table.add_row("[m1, m4] is a C-path", True, facts["[m1,m4] causal"])
    table.add_row("[m5, m4] is a zigzag path", True, facts["[m5,m4] zigzag"])
    table.add_row("[m5, m4] is non-causal (Z-path)", True, not facts["[m5,m4] causal"])
    table.add_row("{v1, s2^1, s3^1} consistent", True, consistent)
    table.add_row("{s1^0, s2^1, s3^1} consistent", False, inconsistent)
    table.add_row("CCP is RD-trackable", True, facts["rdt"])
    table.add_row(
        "RD-trackable without m3", False, check_rdt(without_m3, collect_witnesses=False).is_rdt
    )
    emit_table("fig1_example_ccp", table.render() + "\n\n" + render_ccp(ccp))

    assert facts["[m1,m2] causal"] and facts["[m1,m4] causal"]
    assert facts["[m5,m4] zigzag"] and not facts["[m5,m4] causal"]
    assert consistent and not inconsistent
    assert facts["rdt"]
    assert not check_rdt(without_m3, collect_witnesses=False).is_rdt
