"""FIG-2: useless checkpoints and the domino effect.

Regenerates the figure's claim (every non-initial checkpoint is useless, one
failure rolls the whole application back to its initial state) and contrasts it
with the same traffic pattern run under an RDT protocol, where the rollback is
bounded.  The benchmark times the combination of zigzag-cycle detection and
recovery-line search on the hand-built pattern.
"""

from repro.analysis.tables import TextTable
from repro.ccp.zigzag import ZigzagAnalysis
from repro.recovery.recovery_line import recovery_line_brute_force
from repro.scenarios.figures import figure2_ccp
from repro.simulation.runner import SimulationConfig, SimulationRunner
from repro.simulation.workloads import RingWorkload


def test_fig2_domino_effect(benchmark, emit_table):
    ccp = figure2_ccp()

    def analyse():
        useless = ZigzagAnalysis(ccp).useless_checkpoints()
        line = recovery_line_brute_force(ccp, [0])
        return useless, line

    useless, line = benchmark(analyse)

    config = SimulationConfig(
        num_processes=2,
        duration=80.0,
        workload=RingWorkload(period=3.0, mean_checkpoint_gap=7.0),
        protocol="fdas",
        collector="none",
        seed=11,
        keep_final_ccp=True,
    )
    fdas_result = SimulationRunner(config).run()
    fdas_ccp = fdas_result.final_ccp
    assert fdas_ccp is not None
    fdas_useless = ZigzagAnalysis(fdas_ccp).useless_checkpoints()
    fdas_line = recovery_line_brute_force(fdas_ccp, [0])
    fdas_lost = sum(
        fdas_ccp.volatile_index(pid) - fdas_line.indices[pid] for pid in fdas_ccp.processes
    )

    table = TextTable(
        ["scenario", "useless checkpoints", "recovery line (p1 fails)", "lost checkpoints"],
        title="Figure 2 — domino effect vs an RDT protocol",
    )
    table.add_row(
        "uncoordinated (Figure 2)",
        len(useless),
        line.indices,
        sum(ccp.volatile_index(pid) - line.indices[pid] for pid in ccp.processes),
    )
    table.add_row("FDAS on ring traffic", len(fdas_useless), fdas_line.indices, fdas_lost)
    emit_table("fig2_domino_effect", table.render())

    assert len(useless) == 3           # every non-initial stable checkpoint
    assert line.indices == (0, 0)      # full rollback to the initial state
    assert fdas_useless == []          # RDT protocols have no useless checkpoints
    assert fdas_lost < fdas_ccp.total_stable_checkpoints()
